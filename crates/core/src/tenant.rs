//! A tenant: one DBMS instance in one VM with its workload.
//!
//! The advisor's unit of consolidation. A tenant owns its engine, its
//! database catalog, and its current workload; statements are parsed
//! and bound once at construction so that repeated what-if costing
//! only pays for optimization, not parsing.

use crate::problem::Allocation;
use vda_simdb::bind::{bind_statement, BoundQuery};
use vda_simdb::catalog::Catalog;
use vda_simdb::engines::Engine;
use vda_simdb::exec::{ExecContext, ExecOutcome, Executor};
use vda_simdb::Result as DbResult;
use vda_vmm::Hypervisor;
use vda_workloads::Workload;

/// A bound workload statement with its frequency.
#[derive(Debug, Clone)]
pub struct BoundStatement {
    /// The bound query.
    pub query: BoundQuery,
    /// Executions in the monitoring interval.
    pub count: f64,
    /// Concurrent clients issuing it.
    pub concurrency: f64,
}

/// One consolidated DBMS instance.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Display name.
    pub name: String,
    /// The database engine running in this VM.
    pub engine: Engine,
    /// The database's catalog (statistics).
    pub catalog: Catalog,
    /// The current workload description.
    pub workload: Workload,
    bound: Vec<BoundStatement>,
    /// Memoized [`Self::fingerprint`]; engine and catalog are fixed
    /// for a tenant's lifetime, so only workload mutations reset it.
    fingerprint: std::sync::OnceLock<u64>,
}

impl Tenant {
    /// Create a tenant, binding every workload statement against the
    /// catalog.
    pub fn new(
        name: impl Into<String>,
        engine: Engine,
        catalog: Catalog,
        workload: Workload,
    ) -> DbResult<Self> {
        let bound = bind_workload(&workload, &catalog)?;
        Ok(Tenant {
            name: name.into(),
            engine,
            catalog,
            workload,
            bound,
            fingerprint: std::sync::OnceLock::new(),
        })
    }

    /// The bound statements.
    pub fn statements(&self) -> &[BoundStatement] {
        &self.bound
    }

    /// Total statement executions in the monitoring interval.
    pub fn total_count(&self) -> f64 {
        self.bound.iter().map(|s| s.count).sum()
    }

    /// Replace the workload (dynamic configuration management: the
    /// observed workload changed between monitoring periods).
    pub fn set_workload(&mut self, workload: Workload) -> DbResult<()> {
        self.bound = bind_workload(&workload, &self.catalog)?;
        self.workload = workload;
        self.fingerprint = std::sync::OnceLock::new();
        Ok(())
    }

    /// Scale workload intensity in place (†: same queries, higher
    /// arrival rate).
    pub fn scale_workload(&mut self, factor: f64) {
        self.workload.scale(factor);
        for s in &mut self.bound {
            s.count *= factor;
        }
        self.fingerprint = std::sync::OnceLock::new();
    }

    /// Stable identity of everything that determines a what-if
    /// estimate for this tenant besides the calibrated model and the
    /// candidate allocation: engine (kind *and* tuning policy),
    /// catalog statistics, and the workload's statements with their
    /// frequencies. Shared estimate caches key entries by it, so a
    /// workload change makes old entries unreachable rather than
    /// wrong. Memoized: computed once per workload generation
    /// (mutating the `workload` field directly bypasses the reset —
    /// use [`Self::set_workload`]/[`Self::scale_workload`]).
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = vda_simdb::hash::Fnv64::new();
            h.write_str(&format!("{:?}", self.engine));
            h.write_u64(self.catalog.signature());
            for s in &self.workload.statements {
                h.write_str(&s.sql);
                h.write_u64(s.count.to_bits());
                h.write_u64(s.concurrency.to_bits());
            }
            h.finish()
        })
    }

    /// Measure the **actual** cost (total seconds) of running this
    /// tenant's workload in a VM configured with `alloc` on `hv` —
    /// the simulation's ground truth, used for online refinement and
    /// for the experiments' "actual improvement" metrics.
    pub fn actual_cost(&self, hv: &Hypervisor, alloc: Allocation) -> f64 {
        let perf = hv.perf_for(
            alloc
                .vm_config()
                .expect("advisor allocations are valid VM configs"),
        );
        let exec = Executor::new(&self.engine, &self.catalog);
        self.bound
            .iter()
            .map(|s| {
                let ctx = ExecContext {
                    concurrency: s.concurrency,
                };
                let out: ExecOutcome = exec.execute(&s.query, &perf, &ctx);
                out.seconds * s.count
            })
            .sum()
    }
}

fn bind_workload(workload: &Workload, catalog: &Catalog) -> DbResult<Vec<BoundStatement>> {
    workload
        .statements
        .iter()
        .map(|s| {
            Ok(BoundStatement {
                query: bind_statement(&s.sql, catalog)?,
                count: s.count,
                concurrency: s.concurrency,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vda_vmm::PhysicalMachine;
    use vda_workloads::{tpch, WorkloadStatement};

    fn tenant() -> Tenant {
        Tenant::new(
            "t",
            Engine::pg(),
            tpch::catalog(1.0),
            tpch::query_workload(6, 2.0),
        )
        .unwrap()
    }

    #[test]
    fn binds_statements_on_construction() {
        let t = tenant();
        assert_eq!(t.statements().len(), 1);
        assert_eq!(t.total_count(), 2.0);
    }

    #[test]
    fn rejects_unbindable_workload() {
        let mut w = Workload::new("bad");
        w.push(WorkloadStatement::dss("SELECT * FROM nonexistent", 1.0));
        assert!(Tenant::new("t", Engine::pg(), tpch::catalog(1.0), w).is_err());
    }

    #[test]
    fn actual_cost_scales_with_count() {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let t1 = Tenant::new(
            "a",
            Engine::pg(),
            tpch::catalog(1.0),
            tpch::query_workload(6, 1.0),
        )
        .unwrap();
        let t2 = Tenant::new(
            "b",
            Engine::pg(),
            tpch::catalog(1.0),
            tpch::query_workload(6, 3.0),
        )
        .unwrap();
        let alloc = Allocation::new(0.5, 0.5);
        let c1 = t1.actual_cost(&hv, alloc);
        let c2 = t2.actual_cost(&hv, alloc);
        assert!((c2 / c1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scale_workload_changes_counts() {
        let mut t = tenant();
        t.scale_workload(2.5);
        assert_eq!(t.total_count(), 5.0);
    }

    #[test]
    fn set_workload_rebinds() {
        let mut t = tenant();
        t.set_workload(tpch::query_workload(1, 4.0)).unwrap();
        assert_eq!(t.total_count(), 4.0);
        assert!(t.workload.name.contains("Q1"));
    }

    #[test]
    fn more_cpu_never_hurts_actual_cost() {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let t = tenant();
        let lo = t.actual_cost(&hv, Allocation::new(0.2, 0.5));
        let hi = t.actual_cost(&hv, Allocation::new(0.8, 0.5));
        assert!(hi <= lo);
    }
}
