// detlint fixture: D4 axis-compat must fire exactly once (the
// deprecated two-field constructor). The blessed accessor must NOT.
pub fn legacy(a: Allocation) -> f64 {
    let v = Allocation::new(0.5, 0.5);
    v.get(Resource::Cpu) + a.get(Resource::Memory)
}
