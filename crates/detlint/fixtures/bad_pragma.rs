// detlint fixture: a pragma without a reason is itself a finding
// (bad-pragma) and suppresses nothing, so hash-iter fires too.
use std::collections::HashMap;

// detlint:allow(hash-iter)
pub fn count(map: &HashMap<u64, u64>) -> usize {
    map.keys().count()
}
