// detlint fixture: D3 float-fmt must fire exactly once (the bare
// `{x}` on an f64). The explicit-precision line must NOT fire.
pub fn emit(x: f64) -> String {
    let _display_choice_is_fine = format!("{x:.3}");
    format!("{x}")
}
