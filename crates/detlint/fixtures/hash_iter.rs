// detlint fixture: D1 hash-iter must fire exactly once (the `.keys()`
// call). The `.get` lookup on the same map must NOT fire.
use std::collections::HashMap;

pub fn first_key(map: &HashMap<u64, u64>) -> Option<u64> {
    let _lookup_is_fine = map.get(&7);
    map.keys().min().copied()
}
