// detlint fixture: a violation with a reasoned pragma on the same
// line is suppressed — this file must lint clean.
use std::collections::HashMap;

pub fn total(map: &HashMap<u64, u64>) -> u64 {
    map.values().sum() // detlint:allow(hash-iter, reason = "sum of u64 is order-insensitive")
}
