// detlint fixture: D5 unseeded-rng must fire exactly once.
pub fn roll() -> u64 {
    rand::thread_rng().next_u64()
}
