// detlint fixture: a well-formed pragma that suppresses nothing must
// fire unused-pragma exactly once.

// detlint:allow(hash-iter, reason = "nothing here iterates a hash map")
pub fn forty_two() -> u64 {
    42
}
