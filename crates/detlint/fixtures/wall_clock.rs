// detlint fixture: D2 wall-clock must fire exactly once (the single
// `Instant` mention below).
pub fn stamp() -> f64 {
    std::time::Instant::now().elapsed().as_secs_f64()
}
