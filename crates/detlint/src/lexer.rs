//! A minimal Rust lexer: enough token structure for the determinism
//! rules, hand-rolled like [`vda_core::jsonio`]'s parser. Handles the
//! syntax that would otherwise corrupt a naive scan — nested block
//! comments, string/raw-string/byte-string literals, char literals vs
//! lifetimes — and extracts `detlint:` pragmas from line comments
//! while it goes.

use crate::Rule;

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// Punctuation (single char, plus the joined `::` and `->`).
    Punct,
    /// A string literal (text holds the *contents*, escapes intact).
    Str,
    /// A char or byte literal.
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (for [`TokKind::Str`], the unquoted contents).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A parsed `detlint:allow(...)` / `detlint:allow-file(...)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// Whether the comment is alone on its line (then it suppresses
    /// the *next* line) or trails code (then it suppresses its own).
    pub standalone: bool,
    /// Whether this is the file-scoped `allow-file` form.
    pub file_scope: bool,
    /// The named rule; `None` if the name is unknown.
    pub rule: Option<Rule>,
    /// The reason string; `None` if missing or empty.
    pub reason: Option<String>,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub toks: Vec<Tok>,
    /// Every `detlint:` pragma found in line comments.
    pub pragmas: Vec<Pragma>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens and pragmas. Unterminated constructs consume
/// to end of input rather than erroring: the linter's job is to scan
/// code that already compiles.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether only whitespace has been seen since the last newline —
    // decides if a pragma comment is standalone.
    let mut line_blank_so_far = true;
    let mut out = Lexed::default();

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_blank_so_far = true;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                if let Some(p) = parse_pragma(text, line, line_blank_so_far) {
                    out.pragmas.push(p);
                }
                // The comment itself does not make the line non-blank
                // for *subsequent* content (nothing follows on it).
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comments.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        line_blank_so_far = true;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (text, ni, nl) = scan_string(src, i + 1, line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line = nl;
                i = ni;
                line_blank_so_far = false;
            }
            b'\'' => {
                let (tok, ni) = scan_quote(src, i, line);
                out.toks.push(tok);
                i = ni;
                line_blank_so_far = false;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        // Exponent sign: 1e-9, 2E+3.
                        if (d == b'e' || d == b'E')
                            && i + 1 < b.len()
                            && (b[i + 1] == b'+' || b[i + 1] == b'-')
                            && start < i
                            && b[start..i].iter().all(|x| !x.is_ascii_alphabetic())
                        {
                            i += 2;
                            continue;
                        }
                        i += 1;
                    } else if d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        // 1.5 — but not the range 0..n.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
                line_blank_so_far = false;
            }
            c if is_ident_start(c) => {
                // Raw/byte string prefixes: r", r#", b", br", br#".
                if let Some((text, ni, nl)) = scan_prefixed_string(src, i, line) {
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line,
                    });
                    line = nl;
                    i = ni;
                    line_blank_so_far = false;
                    continue;
                }
                if c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
                    // Byte char literal b'x'.
                    let (tok, ni) = scan_quote(src, i + 1, line);
                    out.toks.push(tok);
                    i = ni;
                    line_blank_so_far = false;
                    continue;
                }
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let mut text = &src[start..i];
                // Raw identifiers: lint r#try as try.
                if text == "r" && i < b.len() && b[i] == b'#' && i + 1 < b.len() {
                    let rs = i + 1;
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    text = &src[rs..i];
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: text.to_string(),
                    line,
                });
                line_blank_so_far = false;
            }
            _ => {
                // Punctuation; join `::` and `->` (the rules split on
                // single `:` vs path separators).
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                let text = if two == "::" || two == "->" {
                    i += 2;
                    two.to_string()
                } else {
                    i += 1;
                    (c as char).to_string()
                };
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
                line_blank_so_far = false;
            }
        }
    }
    out
}

/// Scan a normal string body from just after the opening quote.
/// Returns (contents, next index, current line).
fn scan_string(src: &str, mut i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let start = i;
    while i < b.len() {
        match b[i] {
            b'"' => return (src[start..i].to_string(), i + 1, line),
            b'\\' => i += 2,
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start..].to_string(), b.len(), line)
}

/// Scan raw/byte string forms starting at an `r`/`b` prefix, if the
/// following bytes actually form one. Returns (contents, next index,
/// current line).
fn scan_prefixed_string(src: &str, i: usize, mut line: u32) -> Option<(String, usize, u32)> {
    let b = src.as_bytes();
    let rest = &b[i..];
    let (raw, mut j) = match rest {
        [b'r', b'"', ..] => (true, i + 1),
        [b'r', b'#', ..] => (true, i + 1),
        [b'b', b'"', ..] => (false, i + 1),
        [b'b', b'r', b'"', ..] | [b'b', b'r', b'#', ..] => (true, i + 2),
        _ => return None,
    };
    if raw {
        // j points at `"` or the first `#`.
        let mut hashes = 0;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= b.len() || b[j] != b'"' {
            return None; // r#ident, not a raw string
        }
        j += 1;
        let start = j;
        // Find `"` followed by `hashes` hashes.
        while j < b.len() {
            if b[j] == b'\n' {
                line += 1;
                j += 1;
            } else if b[j] == b'"'
                && b[j + 1..].iter().take_while(|&&h| h == b'#').count() >= hashes
            {
                return Some((src[start..j].to_string(), j + 1 + hashes, line));
            } else {
                j += 1;
            }
        }
        Some((src[start..].to_string(), b.len(), line))
    } else {
        // b"..." with escapes.
        let (text, ni, nl) = scan_string(src, j + 1, line);
        Some((text, ni, nl))
    }
}

/// Scan from a `'`: a char literal or a lifetime.
fn scan_quote(src: &str, i: usize, line: u32) -> (Tok, usize) {
    let b = src.as_bytes();
    let mut j = i + 1; // past the quote
    if j < b.len() && b[j] == b'\\' {
        // Escaped char literal: consume escape, then to closing quote.
        j += 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        let end = (j + 1).min(b.len());
        return (
            Tok {
                kind: TokKind::Char,
                text: src[i..end].to_string(),
                line,
            },
            end,
        );
    }
    // Single non-identifier char then a quote: a punctuation char
    // literal like '"' or '(' (and b'"'), never a lifetime.
    if j + 1 < b.len() && !is_ident_continue(b[j]) && b[j] != b'\'' && b[j + 1] == b'\'' {
        return (
            Tok {
                kind: TokKind::Char,
                text: src[i..j + 2].to_string(),
                line,
            },
            j + 2,
        );
    }
    // Consume ident-continue bytes; a closing quote right after makes
    // it a char literal ('a', 'π'), otherwise it is a lifetime ('a>).
    while j < b.len() && is_ident_continue(b[j]) {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' && j > i + 1 {
        (
            Tok {
                kind: TokKind::Char,
                text: src[i..j + 1].to_string(),
                line,
            },
            j + 1,
        )
    } else if j < b.len() && b[j] == b'\'' && j == i + 1 {
        // Degenerate `''` — treat as a char token.
        (
            Tok {
                kind: TokKind::Char,
                text: src[i..j + 1].to_string(),
                line,
            },
            j + 1,
        )
    } else {
        (
            Tok {
                kind: TokKind::Lifetime,
                text: src[i..j].to_string(),
                line,
            },
            j,
        )
    }
}

/// Parse a `detlint:` pragma out of one line-comment's text, if
/// present. Comment text includes the leading `//`.
fn parse_pragma(comment: &str, line: u32, standalone: bool) -> Option<Pragma> {
    let body = comment.trim_start_matches('/').trim();
    let (file_scope, rest) = if let Some(r) = body.strip_prefix("detlint:allow-file(") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("detlint:allow(") {
        (false, r)
    } else {
        return None;
    };
    let inner = rest.strip_suffix(')').unwrap_or(rest);
    let (rule_name, reason_part) = match inner.split_once(',') {
        Some((r, rest)) => (r.trim(), Some(rest.trim())),
        None => (inner.trim(), None),
    };
    let rule = Rule::from_name(rule_name);
    let reason = reason_part.and_then(|r| {
        let r = r.strip_prefix("reason")?.trim_start().strip_prefix('=')?;
        let r = r.trim().trim_matches('"').trim();
        if r.is_empty() {
            None
        } else {
            Some(r.to_string())
        }
    });
    Some(Pragma {
        line,
        standalone,
        file_scope,
        rule,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
// Instant in a comment
/* HashMap in a /* nested */ block */
let s = "Instant::now()";
let r = r#"SystemTime "quoted" inside"#;
let c = 'I';
let b = b'"';
fn real(x: Instant) {}
"##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|t| t.as_str() == "Instant").count(),
            1,
            "{ids:?}"
        );
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_following_tokens() {
        let src = "impl<'a> Foo<'a> for Bar<'static> { fn f(&'a self) {} }";
        let lexed = lex(src);
        let lifetimes: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static", "'a"]);
        assert!(lexed.toks.iter().any(|t| t.is_ident("Bar")));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn joined_puncts() {
        let lexed = lex("fn f() -> A { B::c() }");
        assert!(lexed.toks.iter().any(|t| t.is_punct("->")));
        assert!(lexed.toks.iter().any(|t| t.is_punct("::")));
    }

    #[test]
    fn pragma_parsing_trailing_and_standalone() {
        let src = "\
// detlint:allow(hash-iter, reason = \"sorted below\")
x.iter(); // detlint:allow(wall-clock, reason = \"test shim\")
// detlint:allow-file(unseeded-rng, reason = \"fixture\")
// detlint:allow(hash-iter)
// detlint:allow(no-such-rule, reason = \"x\")
";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 5);
        let p0 = &lexed.pragmas[0];
        assert!(p0.standalone && !p0.file_scope);
        assert_eq!(p0.rule, Some(Rule::HashIter));
        assert_eq!(p0.reason.as_deref(), Some("sorted below"));
        let p1 = &lexed.pragmas[1];
        assert!(!p1.standalone);
        assert_eq!(p1.line, 2);
        assert!(lexed.pragmas[2].file_scope);
        assert_eq!(lexed.pragmas[3].reason, None, "missing reason");
        assert_eq!(lexed.pragmas[4].rule, None, "unknown rule");
    }

    #[test]
    fn numeric_forms_stay_single_tokens() {
        let lexed = lex("let x = 1e-9 + 0xff_u64 + 1.5f64; for i in 0..10 {}");
        let nums: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1e-9", "0xff_u64", "1.5f64", "0", "10"]);
    }
}
