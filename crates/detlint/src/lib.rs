//! `detlint`: a token-level determinism lint for this workspace.
//!
//! Every layer of the advisor stakes its correctness on a
//! bit-identical determinism contract — warm ≡ cold solves,
//! thread-count-invariant decisions, same-state-same-bytes snapshots.
//! The benches and property tests enforce that contract *dynamically*;
//! this crate is the static half: a hand-rolled lexer (in the style of
//! [`vda_core::jsonio`]'s recursive-descent parser — no `syn`, the
//! registry is unreachable) walks every workspace `.rs` file and
//! flags the code shapes that have historically produced silent
//! nondeterminism, deny-by-default:
//!
//! | rule | what it flags |
//! |---|---|
//! | `hash-iter` | iteration over `std::collections::HashMap`/`HashSet` (`iter`, `keys`, `values`, `into_iter`, `drain`, for-loops) — lookups are fine; ordered traversal must use `BTreeMap`/`BTreeSet` or an explicit sort |
//! | `wall-clock` | `Instant` / `SystemTime` outside the designated wall-clock modules (`metrics`, the bench harness) |
//! | `float-fmt` | `{}` / `{:?}` / `.to_string()` formatting of an `f64` in serialization paths — exact printing must go through `jsonio` |
//! | `axis-compat` | the deprecated `problem.rs` compat shims (`cpu_only`, `memory_only`, `cpu_and_memory`, `ResourceVector::new`) and raw `.cpu`/`.memory` field access outside their definitions and pinned legacy tests |
//! | `unseeded-rng` | `rand::thread_rng` / `from_entropy` anywhere, tests included |
//!
//! Findings are suppressed with a *reasoned* pragma:
//!
//! ```text
//! // detlint:allow(hash-iter, reason = "integer sum, order-insensitive")
//! ```
//!
//! either trailing on the offending line or standalone on the line
//! above it; `detlint:allow-file(rule, reason = "...")` suppresses a
//! rule for the whole file. A pragma without a reason is itself a
//! finding (`bad-pragma`), and a pragma that suppresses nothing is too
//! (`unused-pragma`) — suppressions must stay attached to live code.
//!
//! The analysis is heuristic by design: it tracks file-local bindings
//! whose declared type (or direct constructor) names `HashMap`/
//! `HashSet`, attributes method chains like `map.lock().iter()` back
//! to their root, and maps format-string placeholders to `f64`-typed
//! arguments. A token-level pass cannot resolve types across files —
//! where it over-approximates, the pragma (with its mandatory reason)
//! is the escape hatch, and the reasons double as an audit log of
//! every place the workspace deliberately steps around the contract.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

mod lexer;
mod rules;
mod scope;

pub use lexer::{lex, Lexed, Pragma, Tok, TokKind};
pub use scope::{scope_for, FileScope};

/// One determinism rule (or pragma-hygiene meta rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: `HashMap`/`HashSet` iteration in deterministic modules.
    HashIter,
    /// D2: `Instant`/`SystemTime` outside wall-clock modules.
    WallClock,
    /// D3: `{}`/`{:?}`/`to_string()` on `f64` in serialization paths.
    FloatFmt,
    /// D4: deprecated axis compat shims / raw `.cpu`/`.memory` access.
    AxisCompat,
    /// D5: unseeded randomness (`thread_rng`, `from_entropy`).
    UnseededRng,
    /// A malformed suppression pragma (unknown rule, missing reason).
    BadPragma,
    /// A valid pragma that suppressed nothing.
    UnusedPragma,
}

impl Rule {
    /// The five determinism rules (the meta rules are not listed: they
    /// fire on pragma hygiene, not on code).
    pub const LINTS: [Rule; 5] = [
        Rule::HashIter,
        Rule::WallClock,
        Rule::FloatFmt,
        Rule::AxisCompat,
        Rule::UnseededRng,
    ];

    /// The rule's kebab-case name, as written in pragmas and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::FloatFmt => "float-fmt",
            Rule::AxisCompat => "axis-compat",
            Rule::UnseededRng => "unseeded-rng",
            Rule::BadPragma => "bad-pragma",
            Rule::UnusedPragma => "unused-pragma",
        }
    }

    /// Parse a rule name as written in a pragma.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "hash-iter" => Some(Rule::HashIter),
            "wall-clock" => Some(Rule::WallClock),
            "float-fmt" => Some(Rule::FloatFmt),
            "axis-compat" => Some(Rule::AxisCompat),
            "unseeded-rng" => Some(Rule::UnseededRng),
            "bad-pragma" => Some(Rule::BadPragma),
            "unused-pragma" => Some(Rule::UnusedPragma),
            _ => None,
        }
    }

    /// The `--explain` text: what the rule flags and why it exists.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::HashIter => {
                "hash-iter (D1): iteration over std::collections::HashMap/HashSet in \
                 deterministic modules.\n\n\
                 std's hash containers seed RandomState per process, so their iteration \
                 order differs run to run. Any hash-order traversal that feeds Decision \
                 ordering, snapshot bytes, float accumulation, or cache pruning is silent \
                 nondeterminism. Lookups (get/insert/entry/contains/remove) are fine.\n\n\
                 Fix: use BTreeMap/BTreeSet when the traversal order matters, or collect \
                 and sort by a stable key before consuming. If the consumer is provably \
                 order-insensitive (an integer sum, a re-sorted collection), suppress with \
                 a reasoned pragma."
            }
            Rule::WallClock => {
                "wall-clock (D2): Instant/SystemTime outside the designated wall-clock \
                 modules (vda-core's metrics module and the bench harness).\n\n\
                 Wall-clock reads are inherently nondeterministic; anything downstream of \
                 one cannot be replayed bit-identically. Measurement belongs in the bench \
                 crate or behind metrics::Clock, which is injectable (Clock::manual) so \
                 tests and replays control time."
            }
            Rule::FloatFmt => {
                "float-fmt (D3): formatting an f64 with bare {}, {:?}, or .to_string() in \
                 a serialization path (snapshot.rs, the bench experiment emitters).\n\n\
                 Exact f64 bytes are part of the snapshot contract (same state, same \
                 bytes; parse(write(x)) == x bit for bit) and jsonio::write is the one \
                 blessed printer. Bare Display on an f64 scattered through emitters \
                 invites drift between writers. Explicit-precision formats ({x:.3}) are \
                 allowed: deliberate rounding of display-only fields is not an exactness \
                 path."
            }
            Rule::AxisCompat => {
                "axis-compat (D4): the deprecated problem.rs compat shims — cpu_only, \
                 memory_only, cpu_and_memory, ResourceVector::new (and its Allocation \
                 alias) — and raw .cpu/.memory field access, outside the shims' own \
                 definitions and pinned legacy tests.\n\n\
                 The resource model is an M-axis vector (Resource::ALL); the two-field \
                 (cpu, memory) shims hard-code M = 2 and silently pin every other axis to \
                 a full share. New code must build vectors axis-by-axis \
                 (ResourceVector::from_fn/with/splat, SearchSpace::over) so opening the \
                 next axis is a data change, not a code hunt."
            }
            Rule::UnseededRng => {
                "unseeded-rng (D5): rand::thread_rng / SeedableRng::from_entropy anywhere, \
                 tests included.\n\n\
                 Entropy-seeded randomness makes failures unreproducible. Every random \
                 stream in this workspace derives from an explicit, logged seed (the \
                 vendored proptest stub seeds from the test name for the same reason)."
            }
            Rule::BadPragma => {
                "bad-pragma: a detlint:allow pragma with an unknown rule name or a \
                 missing/empty reason string.\n\n\
                 Suppressions are part of the audit surface: a pragma must name a real \
                 rule and say *why* the flagged code is safe."
            }
            Rule::UnusedPragma => {
                "unused-pragma: a well-formed pragma that suppressed no finding.\n\n\
                 Stale suppressions hide future violations on the lines they shadow; \
                 delete them when the code they excused changes."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One unsuppressed lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path of the offending file, as given to the linter.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Lint one source text under the scope rules its path selects.
/// `path` is used both for the findings' `file` field and for scope
/// resolution (see [`scope_for`]).
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let scope = scope_for(path);
    let lexed = lex(src);
    rules::run(path, &lexed, &scope)
}

/// Lint one file on disk.
pub fn lint_file(path: &Path) -> io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    Ok(lint_source(&path.display().to_string(), &src))
}

/// Every lintable `.rs` file under a workspace root, sorted. Skips
/// `target/`, `vendor/` (external stubs), `.git/`, and the lint's own
/// known-bad `fixtures/` (linted explicitly by the self-tests and the
/// seeded-violation CI leg, never as part of the workspace).
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint a set of files, labeling findings with paths relative to
/// `root` when they fall under it (stable report paths for CI).
pub fn lint_files(files: &[PathBuf], root: Option<&Path>) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in files {
        let label = match root.and_then(|r| path.strip_prefix(r).ok()) {
            Some(rel) => rel.display().to_string(),
            None => path.display().to_string(),
        };
        let src = std::fs::read_to_string(path)?;
        findings.extend(lint_source(&label, &src));
    }
    findings.sort();
    Ok(findings)
}

/// Render findings as the machine-readable `--json` report, via the
/// workspace's own exact-JSON writer.
pub fn json_report(findings: &[Finding], files_scanned: usize) -> String {
    use vda_core::jsonio::Json;
    let rows: Vec<Json> = findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("file".into(), Json::Str(f.file.clone())),
                ("line".into(), Json::Num(f.line as f64)),
                ("rule".into(), Json::Str(f.rule.name().into())),
                ("message".into(), Json::Str(f.message.clone())),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("files_scanned".into(), Json::Num(files_scanned as f64)),
        ("findings".into(), Json::Arr(rows)),
    ]);
    vda_core::jsonio::write(&doc)
}

/// Count findings per rule, for the text-mode summary line.
pub fn tally_by_rule(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut tally: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in findings {
        *tally.entry(f.rule.name()).or_default() += 1;
    }
    tally
}

/// The names bound (by annotation, constructor, or alias) to hash
/// container types in one token stream — exposed for tests.
pub fn hash_typed_names(lexed: &Lexed) -> BTreeSet<String> {
    rules::hash_typed_names(&lexed.toks)
}
