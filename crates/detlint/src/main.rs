//! detlint CLI.
//!
//! ```text
//! detlint --workspace [--json]     lint every workspace .rs file
//! detlint <FILES..> [--json]       lint specific files (fixtures are strict)
//! detlint --explain <rule>         print a rule's rationale
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.

use detlint::{json_report, lint_files, tally_by_rule, workspace_files, Rule};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: detlint [--workspace | FILES..] [--json]
       detlint --explain <rule>

rules: hash-iter wall-clock float-fmt axis-compat unseeded-rng";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut workspace = false;
    let mut explain: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--explain" => match it.next() {
                Some(name) => explain = Some(name.clone()),
                None => {
                    eprintln!("--explain needs a rule name\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(PathBuf::from(path)),
        }
    }

    if let Some(name) = explain {
        return match Rule::from_name(&name) {
            Some(rule) => {
                println!("{}: {}\n\n{}", rule.name(), rule, rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown rule `{name}`\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }

    let root = if workspace {
        match find_workspace_root() {
            Some(root) => Some(root),
            None => {
                eprintln!("detlint: no workspace root (Cargo.toml with [workspace]) above cwd");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    if workspace {
        let root = root.as_deref().unwrap();
        match workspace_files(root) {
            Ok(found) => files = found,
            Err(e) => {
                eprintln!("detlint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let findings = match lint_files(&files, root.as_deref()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", json_report(&findings, files.len()));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            eprintln!("detlint: {} files clean", files.len());
        } else {
            let tally: Vec<String> = tally_by_rule(&findings)
                .into_iter()
                .map(|(rule, n)| format!("{n} {rule}"))
                .collect();
            eprintln!(
                "detlint: {} finding(s) in {} file(s): {}",
                findings.len(),
                files.len(),
                tally.join(", ")
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Nearest ancestor of the cwd whose Cargo.toml declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if has_workspace_manifest(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn has_workspace_manifest(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.lines().any(|l| l.trim() == "[workspace]"))
        .unwrap_or(false)
}
