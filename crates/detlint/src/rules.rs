//! The determinism rules, run over one file's token stream.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::scope::FileScope;
use crate::{Finding, Rule};
use std::collections::BTreeSet;

/// Hash-container iteration methods (D1). Lookup/maintenance methods
/// (`get`, `insert`, `entry`, `contains_key`, `remove`, `retain`,
/// `len`) are deliberately absent: they don't expose iteration order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Format-emitting macros whose format strings D3 inspects.
const FMT_MACROS: [&str; 7] = [
    "format", "write", "writeln", "print", "println", "eprint", "eprintln",
];

/// Macros whose first argument is a writer, not the format string.
const WRITER_MACROS: [&str; 2] = ["write", "writeln"];

/// Run every applicable rule and the pragma pass over one file.
pub fn run(path: &str, lexed: &Lexed, scope: &FileScope) -> Vec<Finding> {
    let toks = &lexed.toks;
    let test_regions = test_regions(toks);
    let in_test = |line: u32| {
        scope.test_file
            || test_regions
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    };

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |line: u32, rule: Rule, message: String| {
        raw.push(Finding {
            file: path.to_string(),
            line,
            rule,
            message,
        });
    };

    hash_iter_rule(toks, &mut push);
    wall_clock_rule(toks, scope, &mut push);
    float_fmt_rule(toks, scope, &mut push);
    axis_compat_rule(toks, scope, &mut push);
    unseeded_rng_rule(toks, &mut push);

    // Test scope exempts everything but D5: an entropy-seeded test is
    // unreproducible no matter where it lives.
    raw.retain(|f| f.rule == Rule::UnseededRng || !in_test(f.line));
    raw.sort();
    raw.dedup();

    apply_pragmas(path, lexed, raw, &|line| in_test(line))
}

// ---------------------------------------------------------------------
// Test regions
// ---------------------------------------------------------------------

/// Line ranges of `#[cfg(test)] mod ... { ... }` items, by brace
/// matching from the token stream.
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")")
            && toks[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect a `mod` item.
        let mut j = i + 7;
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            j = match skip_balanced(toks, j + 1, "[", "]") {
                Some(after) => after,
                None => return regions,
            };
        }
        if j < toks.len() && toks[j].is_ident("mod") {
            // Find the opening brace, then its match.
            let mut k = j;
            while k < toks.len() && !toks[k].is_punct("{") && !toks[k].is_punct(";") {
                k += 1;
            }
            if k < toks.len() && toks[k].is_punct("{") {
                let start_line = toks[i].line;
                let end = skip_balanced(toks, k, "{", "}").unwrap_or(toks.len());
                let end_line = toks[end.saturating_sub(1).min(toks.len() - 1)].line;
                regions.push((start_line, end_line));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// From an opening delimiter at `open_idx`, return the index just past
/// its matching close.
fn skip_balanced(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

/// From a closing delimiter at `close_idx`, return the index of its
/// matching open (walking backwards).
fn open_of(toks: &[Tok], close_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = close_idx;
    loop {
        let t = &toks[k];
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
}

// ---------------------------------------------------------------------
// D1: hash-iter
// ---------------------------------------------------------------------

/// File-local names bound to `HashMap`/`HashSet`: type annotations
/// (`name: HashMap<..>`, fields, params), direct constructors
/// (`let name = HashMap::new()`), and annotations through one level of
/// local `type` alias.
pub(crate) fn hash_typed_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut hash_types: BTreeSet<String> = ["HashMap", "HashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    // Local aliases: `type X = ...HashMap...;`
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("type") && i + 2 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let alias = toks[i + 1].text.clone();
            let mut j = i + 2;
            let mut rhs_hash = false;
            while j < toks.len() && !toks[j].is_punct(";") {
                if toks[j].kind == TokKind::Ident && hash_types.contains(&toks[j].text) {
                    rhs_hash = true;
                }
                j += 1;
            }
            if rhs_hash {
                hash_types.insert(alias);
            }
            i = j;
        } else {
            i += 1;
        }
    }

    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !hash_types.contains(&t.text) || i == 0 {
            continue;
        }
        if let Some(name) = binding_name_before(toks, i) {
            names.insert(name);
        }
    }
    names
}

/// Walk back from a hash-type token over type syntax to the binding it
/// annotates (`name: ...T...`) or the binding a constructor
/// initializes (`let name = T::new()`).
fn binding_name_before(toks: &[Tok], type_idx: usize) -> Option<String> {
    let mut k = type_idx;
    for _ in 0..48 {
        if k == 0 {
            return None;
        }
        k -= 1;
        let t = &toks[k];
        match t.kind {
            TokKind::Ident if matches!(t.text.as_str(), "mut" | "dyn" | "impl" | "box") => {}
            TokKind::Ident => {}
            TokKind::Lifetime => {}
            TokKind::Punct => match t.text.as_str() {
                "<" | ">" | "," | "::" | "&" | "(" | ")" | "[" | "]" | ";" => {
                    if t.text == ";" {
                        return None;
                    }
                }
                ":" => {
                    // Annotation: the ident just before the colon.
                    return (k > 0 && toks[k - 1].kind == TokKind::Ident)
                        .then(|| toks[k - 1].text.clone());
                }
                "=" => {
                    // Constructor: `let name = HashMap::new()`.
                    return (k > 0 && toks[k - 1].kind == TokKind::Ident)
                        .then(|| toks[k - 1].text.clone());
                }
                _ => return None,
            },
            _ => return None,
        }
    }
    None
}

fn hash_iter_rule(toks: &[Tok], push: &mut impl FnMut(u32, Rule, String)) {
    let names = hash_typed_names(toks);
    if names.is_empty() {
        return;
    }

    // Method chains: `.iter()` etc. whose receiver chain contains a
    // hash-typed name (handles `map.lock().iter()`, `inner.map.keys()`).
    for i in 1..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !ITER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if !toks[i - 1].is_punct(".") {
            continue;
        }
        if i + 1 >= toks.len() || !toks[i + 1].is_punct("(") {
            continue;
        }
        if let Some(root) = chain_hash_root(toks, i - 1, &names) {
            push(
                t.line,
                Rule::HashIter,
                format!(
                    "`{}.{}()` iterates a std hash container; iteration order is \
                     nondeterministic — use BTreeMap/BTreeSet or sort by a stable key",
                    root, t.text
                ),
            );
        }
    }

    // For-loops whose head mentions a hash-typed name:
    // `for (k, v) in &map { ... }`.
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find `in` at delimiter depth 0, bail at `{` (impl Trait for
        // Type has no bare `in` before its brace).
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_idx = None;
        while j < toks.len() && j < i + 64 {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
            }
            if depth == 0 && t.is_ident("in") {
                in_idx = Some(j);
                break;
            }
            j += 1;
        }
        let Some(in_idx) = in_idx else {
            i += 1;
            continue;
        };
        // Head: tokens from `in` to the loop body `{` at depth 0.
        let mut k = in_idx + 1;
        let mut depth = 0i32;
        let mut offender = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {}
                }
            }
            if t.kind == TokKind::Ident && names.contains(&t.text) {
                // Skip if an iteration method already flagged this
                // expression (avoid double-reporting the same line).
                let already = k + 2 < toks.len()
                    && toks[k + 1].is_punct(".")
                    && ITER_METHODS.contains(&toks[k + 2].text.as_str());
                if !already {
                    offender = Some((t.line, t.text.clone()));
                }
            }
            k += 1;
        }
        if let Some((line, name)) = offender {
            push(
                line,
                Rule::HashIter,
                format!(
                    "for-loop over `{name}` traverses a std hash container in \
                     nondeterministic order — use BTreeMap/BTreeSet or sort first"
                ),
            );
        }
        i = in_idx + 1;
    }
}

/// If the postfix chain ending at the `.` before an iteration method
/// contains a hash-typed name, return that name.
fn chain_hash_root(toks: &[Tok], dot_idx: usize, names: &BTreeSet<String>) -> Option<String> {
    let mut k = dot_idx; // the `.` before the method
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        // One postfix segment: `ident`, `ident(...)`, `(...)`, `[...]`, `?`.
        loop {
            let t = &toks[k];
            if t.is_punct(")") {
                k = open_of(toks, k, "(", ")")?;
                if k == 0 {
                    return None;
                }
                k -= 1;
                if toks[k].kind != TokKind::Ident {
                    // Parenthesized expression, not a call: scan its
                    // interior? Keep it simple: stop the walk.
                    return None;
                }
                // Method/fn name: not a receiver binding, fall through.
            } else if t.is_punct("]") {
                k = open_of(toks, k, "[", "]")?;
                if k == 0 {
                    return None;
                }
                k -= 1;
                continue;
            } else if t.is_punct("?") {
                if k == 0 {
                    return None;
                }
                k -= 1;
                continue;
            }
            break;
        }
        let t = &toks[k];
        if t.kind == TokKind::Ident {
            if names.contains(&t.text) {
                return Some(t.text.clone());
            }
        } else {
            return None;
        }
        // Continue the chain only through a preceding `.`.
        if k == 0 || !toks[k - 1].is_punct(".") {
            return None;
        }
        k -= 1; // now at the `.`, loop continues past it
    }
}

// ---------------------------------------------------------------------
// D2: wall-clock
// ---------------------------------------------------------------------

fn wall_clock_rule(toks: &[Tok], scope: &FileScope, push: &mut impl FnMut(u32, Rule, String)) {
    if scope.wall_clock_ok {
        return;
    }
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            push(
                t.line,
                Rule::WallClock,
                format!(
                    "`{}` outside the designated wall-clock modules (metrics, bench \
                     harness) — route measurement through metrics::Clock",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// D3: float-fmt
// ---------------------------------------------------------------------

/// File-local names known to be `f64`: annotations (`x: f64`,
/// `x: &f64`) and functions declared `-> f64`.
fn f64_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        // `name : [&][mut] f64`
        if toks[i].kind == TokKind::Ident && i + 2 < toks.len() && toks[i + 1].is_punct(":") {
            let mut j = i + 2;
            while j < toks.len()
                && (toks[j].is_punct("&")
                    || toks[j].is_ident("mut")
                    || toks[j].kind == TokKind::Lifetime)
            {
                j += 1;
            }
            if j < toks.len() && toks[j].is_ident("f64") {
                names.insert(toks[i].text.clone());
            }
        }
        // `fn name ( ... ) -> f64`
        if toks[i].is_ident("fn") && i + 2 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = &toks[i + 1].text;
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("(") && !toks[j].is_punct("{") {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("(") {
                if let Some(after) = skip_balanced(toks, j, "(", ")") {
                    if after + 1 < toks.len()
                        && toks[after].is_punct("->")
                        && toks[after + 1].is_ident("f64")
                    {
                        names.insert(name.clone());
                    }
                }
            }
        }
    }
    names
}

fn float_fmt_rule(toks: &[Tok], scope: &FileScope, push: &mut impl FnMut(u32, Rule, String)) {
    if !scope.float_fmt_applies {
        return;
    }
    let f64s = f64_names(toks);

    // `.to_string()` on an f64-typed name.
    for i in 1..toks.len().saturating_sub(2) {
        if toks[i].is_punct(".")
            && toks[i + 1].is_ident("to_string")
            && toks[i + 2].is_punct("(")
            && toks[i - 1].kind == TokKind::Ident
            && f64s.contains(&toks[i - 1].text)
        {
            push(
                toks[i + 1].line,
                Rule::FloatFmt,
                format!(
                    "`{}.to_string()` on an f64 in a serialization path — exact printing \
                     must go through jsonio",
                    toks[i - 1].text
                ),
            );
        }
    }

    // Format macros: inspect the format string's placeholders.
    let mut i = 0;
    while i + 2 < toks.len() {
        if !(toks[i].kind == TokKind::Ident
            && FMT_MACROS.contains(&toks[i].text.as_str())
            && toks[i + 1].is_punct("!")
            && toks[i + 2].is_punct("("))
        {
            i += 1;
            continue;
        }
        let open = i + 2;
        let Some(end) = skip_balanced(toks, open, "(", ")") else {
            i += 1;
            continue;
        };
        let args = split_top_level(&toks[open + 1..end - 1]);
        let skip_writer = WRITER_MACROS.contains(&toks[i].text.as_str()) as usize;
        if args.len() > skip_writer {
            let fmt_arg = &args[skip_writer];
            if let Some((fmt_text, fmt_line)) = format_string_of(fmt_arg) {
                let value_args = &args[skip_writer + 1..];
                check_placeholders(&fmt_text, fmt_line, value_args, &f64s, push);
            }
        }
        i = end;
    }
}

/// Split a token slice at top-level commas.
fn split_top_level(toks: &[Tok]) -> Vec<&[Tok]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (k, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    out.push(&toks[start..k]);
                    start = k + 1;
                }
                _ => {}
            }
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

/// The format string of a macro's format argument: a plain string
/// literal, or every string literal inside a `concat!(...)` glued
/// together.
fn format_string_of(arg: &[Tok]) -> Option<(String, u32)> {
    match arg {
        [t] if t.kind == TokKind::Str => Some((t.text.clone(), t.line)),
        [m, bang, ..] if m.is_ident("concat") && bang.is_punct("!") => {
            let parts: String = arg
                .iter()
                .filter(|t| t.kind == TokKind::Str)
                .map(|t| t.text.as_str())
                .collect();
            Some((parts, m.line))
        }
        _ => None,
    }
}

/// Walk a format string's placeholders, flagging bare `{}`/`{:?}`
/// (inline-named or positional) that reference an f64.
fn check_placeholders(
    fmt: &str,
    line: u32,
    value_args: &[&[Tok]],
    f64s: &BTreeSet<String>,
    push: &mut impl FnMut(u32, Rule, String),
) {
    let bytes = fmt.as_bytes();
    let mut i = 0;
    let mut next_positional = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' if i + 1 < bytes.len() && bytes[i + 1] == b'{' => i += 2,
            b'}' if i + 1 < bytes.len() && bytes[i + 1] == b'}' => i += 2,
            b'{' => {
                let close = match fmt[i + 1..].find('}') {
                    Some(off) => i + 1 + off,
                    None => break,
                };
                let inner = &fmt[i + 1..close];
                let (name_part, spec) = match inner.split_once(':') {
                    Some((n, s)) => (n, s),
                    None => (inner, ""),
                };
                // Bare Display/Debug only; any other spec (precision,
                // width, scientific) is a deliberate formatting choice.
                let bare = spec.is_empty() || spec == "?";
                let flagged_name: Option<String> = if name_part.is_empty() {
                    let idx = next_positional;
                    next_positional += 1;
                    value_args.get(idx).and_then(|a| arg_f64_name(a, f64s))
                } else if name_part.bytes().all(|b| b.is_ascii_digit()) {
                    let idx: usize = name_part.parse().unwrap_or(usize::MAX);
                    value_args.get(idx).and_then(|a| arg_f64_name(a, f64s))
                } else {
                    f64s.contains(name_part).then(|| name_part.to_string())
                };
                if bare {
                    if let Some(name) = flagged_name {
                        push(
                            line,
                            Rule::FloatFmt,
                            format!(
                                "f64 `{name}` formatted with a bare `{{{}}}` in a \
                                 serialization path — exact printing must go through \
                                 jsonio (explicit precision like `{{:.3}}` is allowed \
                                 for display-only fields)",
                                if spec.is_empty() {
                                    String::new()
                                } else {
                                    format!(":{spec}")
                                }
                            ),
                        );
                    }
                }
                i = close + 1;
            }
            _ => i += 1,
        }
    }
}

/// If an argument expression's value is a known f64 — a lone ident, a
/// field path ending in one, or a call of an `-> f64` function —
/// return the name that proves it.
fn arg_f64_name(arg: &[Tok], f64s: &BTreeSet<String>) -> Option<String> {
    let mut toks = arg;
    while let Some(t) = toks.first() {
        if t.is_punct("&") || t.is_punct("*") {
            toks = &toks[1..];
        } else {
            break;
        }
    }
    match toks {
        [t] if t.kind == TokKind::Ident => f64s.contains(&t.text).then(|| t.text.clone()),
        [.., prev, last] if last.kind == TokKind::Ident && prev.is_punct(".") => {
            f64s.contains(&last.text).then(|| last.text.clone())
        }
        [name, open, ..] if name.kind == TokKind::Ident && open.is_punct("(") => {
            f64s.contains(&name.text).then(|| name.text.clone())
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// D4: axis-compat
// ---------------------------------------------------------------------

fn axis_compat_rule(toks: &[Tok], scope: &FileScope, push: &mut impl FnMut(u32, Rule, String)) {
    if scope.axis_compat_exempt {
        return;
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "cpu_only" | "memory_only" | "cpu_and_memory"
            )
        {
            push(
                t.line,
                Rule::AxisCompat,
                format!(
                    "deprecated paper-era preset `{}` — build the axis set explicitly \
                     with SearchSpace::over(AxisSet::of(..), ..)",
                    t.text
                ),
            );
        }
        // `ResourceVector::new` / `Allocation::new` (type alias).
        if t.kind == TokKind::Ident
            && (t.text == "ResourceVector" || t.text == "Allocation")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("new")
        {
            push(
                toks[i + 2].line,
                Rule::AxisCompat,
                format!(
                    "deprecated two-field constructor `{}::new(cpu, memory)` — build \
                     vectors axis-by-axis (from_fn/splat/with over Resource::ALL)",
                    t.text
                ),
            );
        }
        // Raw field access `.cpu` / `.memory` (not the `()` accessors).
        if t.is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && matches!(toks[i + 1].text.as_str(), "cpu" | "memory")
            && !(i + 2 < toks.len() && toks[i + 2].is_punct("("))
        {
            push(
                toks[i + 1].line,
                Rule::AxisCompat,
                format!(
                    "raw `.{}` field access hard-codes the M = 2 axis pair — go through \
                     ResourceVector::get(Resource::..)",
                    toks[i + 1].text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// D5: unseeded-rng
// ---------------------------------------------------------------------

fn unseeded_rng_rule(toks: &[Tok], push: &mut impl FnMut(u32, Rule, String)) {
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "thread_rng" || t.text == "from_entropy") {
            push(
                t.line,
                Rule::UnseededRng,
                format!(
                    "`{}` draws entropy-seeded randomness — every random stream must \
                     derive from an explicit seed",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------

/// Apply suppression pragmas to the raw findings and emit the
/// pragma-hygiene findings (`bad-pragma`, `unused-pragma`).
fn apply_pragmas(
    path: &str,
    lexed: &Lexed,
    raw: Vec<Finding>,
    in_test: &dyn Fn(u32) -> bool,
) -> Vec<Finding> {
    let pragmas = &lexed.pragmas;
    let mut used = vec![false; pragmas.len()];
    let mut out = Vec::new();

    for f in raw {
        let mut suppressed = false;
        for (pi, p) in pragmas.iter().enumerate() {
            if p.rule != Some(f.rule) || p.reason.is_none() {
                continue;
            }
            let matches = p.file_scope
                || (p.standalone && p.line + 1 == f.line)
                || (!p.standalone && p.line == f.line);
            if matches {
                used[pi] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(f);
        }
    }

    for (pi, p) in pragmas.iter().enumerate() {
        // Pragmas inside test regions suppress nothing (tests are
        // already exempt) and are not held to hygiene rules.
        if in_test(p.line) {
            continue;
        }
        if p.rule.is_none() || p.reason.is_none() {
            let what = if p.rule.is_none() {
                "unknown rule name"
            } else {
                "missing or empty reason"
            };
            out.push(Finding {
                file: path.to_string(),
                line: p.line,
                rule: Rule::BadPragma,
                message: format!(
                    "malformed pragma ({what}) — use \
                     // detlint:allow(rule, reason = \"why this is safe\")"
                ),
            });
        } else if !used[pi] {
            out.push(Finding {
                file: path.to_string(),
                line: p.line,
                rule: Rule::UnusedPragma,
                message: format!(
                    "pragma for `{}` suppressed nothing — delete it or move it next to \
                     the code it excuses",
                    p.rule.map(Rule::name).unwrap_or("?")
                ),
            });
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    const CORE: &str = "crates/core/src/controlplane.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<Rule> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_lookup_is_clean_iteration_is_not() {
        let lookups = r#"
use std::collections::HashMap;
fn f(map: &mut HashMap<u64, u64>) -> Option<u64> {
    map.insert(1, 2);
    map.entry(3).or_default();
    map.retain(|_, v| *v > 0);
    map.get(&1).copied()
}
"#;
        assert!(rules_fired(CORE, lookups).is_empty());

        let iteration = r#"
use std::collections::HashMap;
fn f(map: &HashMap<u64, u64>) -> u64 {
    map.values().sum()
}
"#;
        assert_eq!(rules_fired(CORE, iteration), vec![Rule::HashIter]);
    }

    #[test]
    fn chained_receivers_and_fields_are_attributed() {
        let src = r#"
use std::collections::HashMap;
struct Inner { map: HashMap<u64, u64> }
struct Outer { inner: Mutex<Inner> }
fn f(o: &Outer) -> Vec<u64> {
    o.inner.lock().map.keys().copied().collect()
}
"#;
        assert_eq!(rules_fired(CORE, src), vec![Rule::HashIter]);
    }

    #[test]
    fn for_loops_over_hash_containers_fire() {
        let src = r#"
use std::collections::HashSet;
fn f(set: &HashSet<u64>) {
    for x in set {
        drop(x);
    }
}
"#;
        assert_eq!(rules_fired(CORE, src), vec![Rule::HashIter]);
    }

    #[test]
    fn type_aliases_carry_hashness() {
        let src = r#"
use std::collections::HashMap;
type Cache = RefCell<HashMap<u64, u64>>;
struct S { cache: Cache }
fn f(s: &S) -> usize {
    s.cache.borrow().iter().count()
}
"#;
        assert_eq!(rules_fired(CORE, src), vec![Rule::HashIter]);
    }

    #[test]
    fn btree_iteration_is_clean() {
        let src = r#"
use std::collections::BTreeMap;
fn f(map: &BTreeMap<u64, u64>) -> u64 {
    map.values().sum()
}
"#;
        assert!(rules_fired(CORE, src).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt_except_rng() {
        let src = r#"
fn shipping() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in &m {}
        let t = std::time::Instant::now();
        let r = rand::thread_rng();
    }
}
"#;
        assert_eq!(rules_fired(CORE, src), vec![Rule::UnseededRng]);
    }

    #[test]
    fn wall_clock_respects_scope() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(rules_fired(CORE, src), vec![Rule::WallClock]);
        assert!(rules_fired("crates/core/src/metrics.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/experiments/fleetbench.rs", src).is_empty());
    }

    #[test]
    fn float_fmt_flags_bare_and_allows_precision() {
        let snap = "crates/core/src/snapshot.rs";
        let bare = r#"
fn emit(x: f64) -> String {
    format!("{x}")
}
"#;
        assert_eq!(rules_fired(snap, bare), vec![Rule::FloatFmt]);
        let debug_positional = r#"
fn emit(x: f64) -> String {
    format!("{:?}", x)
}
"#;
        assert_eq!(rules_fired(snap, debug_positional), vec![Rule::FloatFmt]);
        let precise = r#"
fn emit(x: f64) -> String {
    format!("{x:.9} and {0:.3}", x)
}
"#;
        assert!(rules_fired(snap, precise).is_empty());
        let to_string = r#"
fn emit(x: f64) -> String {
    x.to_string()
}
"#;
        assert_eq!(rules_fired(snap, to_string), vec![Rule::FloatFmt]);
        // Outside serialization paths the rule stays silent.
        assert!(rules_fired(CORE, bare).is_empty());
    }

    #[test]
    fn float_fmt_sees_through_concat_and_fn_returns() {
        let snap = "crates/bench/src/experiments/dynbench.rs";
        let src = r#"
fn objective() -> f64 { 1.0 }
fn emit() -> String {
    format!(concat!("a", "{}", "b"), objective())
}
"#;
        assert_eq!(rules_fired(snap, src), vec![Rule::FloatFmt]);
    }

    #[test]
    fn axis_compat_flags_shims_and_raw_fields() {
        let src = r#"
fn f() {
    let s = SearchSpace::cpu_only(0.5);
    let a = Allocation::new(0.5, 0.5);
    let v = ResourceVector::new(1.0, 1.0);
    let c = a.cpu;
}
"#;
        let fired = rules_fired(CORE, src);
        assert_eq!(fired.len(), 4, "{fired:?}");
        assert!(fired.iter().all(|r| *r == Rule::AxisCompat));
        // The accessor *methods* and the definitions file stay clean.
        let methods = "fn f(a: Allocation) -> f64 { a.cpu() + a.memory() }";
        assert!(rules_fired(CORE, methods).is_empty());
        assert!(rules_fired("crates/core/src/problem.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/experiments/placement.rs", src).is_empty());
    }

    #[test]
    fn pragma_suppression_requires_reason_and_use() {
        let violation = "fn f(m: &std::collections::HashMap<u8, u8>) -> usize { m.keys().count() }";
        let with_reason = format!(
            "// detlint:allow(hash-iter, reason = \"count is order-insensitive\")\n{violation}"
        );
        assert!(rules_fired(CORE, &with_reason).is_empty());

        let no_reason = format!("// detlint:allow(hash-iter)\n{violation}");
        let fired = rules_fired(CORE, &no_reason);
        assert_eq!(fired, vec![Rule::BadPragma, Rule::HashIter], "{fired:?}");

        let wrong_line =
            format!("// detlint:allow(hash-iter, reason = \"misplaced\")\n\n{violation}");
        let fired = rules_fired(CORE, &wrong_line);
        assert!(fired.contains(&Rule::HashIter));
        assert!(fired.contains(&Rule::UnusedPragma));

        let trailing = format!(
            "{violation} // detlint:allow(hash-iter, reason = \"count is order-insensitive\")"
        );
        assert!(rules_fired(CORE, &trailing).is_empty());
    }

    #[test]
    fn file_pragma_suppresses_everywhere_in_the_file() {
        let src = r#"
// detlint:allow-file(wall-clock, reason = "latency probe staging area")
fn a() { let t = std::time::Instant::now(); }
fn b() { let t = std::time::Instant::now(); }
"#;
        assert!(rules_fired(CORE, src).is_empty());
    }
}
