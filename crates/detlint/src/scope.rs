//! Path-based scope resolution: which rules apply to which files.
//!
//! The rules are deny-by-default; every exemption here is a
//! *designated* scope with a reason, mirroring the "Determinism
//! rules" section of `docs/ARCHITECTURE.md`:
//!
//! * **test scope** (`tests/`, `benches/`, `#[cfg(test)]` regions) —
//!   exempt from D1–D4: tests pin legacy shims on purpose and may
//!   iterate hash maps to *check* order-insensitive properties. D5
//!   still applies — an entropy-seeded test is unreproducible.
//! * **wall-clock scope** (`crates/bench/`, `metrics.rs`) — exempt
//!   from D2: measurement is these modules' job. `metrics.rs` hosts
//!   the injectable `Clock` the rest of core must route through.
//! * **serialization scope** (`snapshot.rs`, the bench experiment
//!   emitters and bins) — the only places D3 *applies*; `jsonio.rs`
//!   is the designated exact printer and is exempt within it.
//! * **axis-compat pins** (`problem.rs`, `crates/bench/`) — exempt
//!   from D4: `problem.rs` defines the shims; the bench crate
//!   reproduces the paper's §7 experiments, whose (cpu, memory)
//!   presets are pinned on purpose.
//! * **fixtures** (`crates/detlint/fixtures/`) — strict: every rule
//!   applies with no exemptions, so each known-bad snippet fires.

/// Which rules apply to one file, resolved from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// The whole file is test scope (`tests/`, `benches/`).
    pub test_file: bool,
    /// D2 exempt (designated wall-clock module).
    pub wall_clock_ok: bool,
    /// D3 applies (serialization path).
    pub float_fmt_applies: bool,
    /// D4 exempt (shim definitions / pinned paper-era presets).
    pub axis_compat_exempt: bool,
}

/// Resolve the scope for a path. Paths are matched by component, so
/// both absolute and workspace-relative spellings resolve identically.
pub fn scope_for(path: &str) -> FileScope {
    let p = path.replace('\\', "/");
    let has = |needle: &str| p.contains(needle) || p.starts_with(needle.trim_start_matches('/'));
    if has("detlint/fixtures/") {
        // Known-bad snippets: everything strict so each rule fires.
        return FileScope {
            test_file: false,
            wall_clock_ok: false,
            float_fmt_applies: true,
            axis_compat_exempt: false,
        };
    }
    let test_file = has("/tests/") || has("/benches/") || p.starts_with("tests/");
    let in_bench_crate = has("crates/bench/");
    FileScope {
        test_file,
        wall_clock_ok: in_bench_crate || p.ends_with("/metrics.rs"),
        float_fmt_applies: !p.ends_with("/jsonio.rs")
            && (p.ends_with("/snapshot.rs")
                || has("crates/bench/src/experiments/")
                || has("crates/bench/src/bin/")),
        axis_compat_exempt: in_bench_crate || p.ends_with("/problem.rs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_module_is_fully_strict_except_d3() {
        let s = scope_for("crates/core/src/controlplane.rs");
        assert!(!s.test_file);
        assert!(!s.wall_clock_ok);
        assert!(!s.float_fmt_applies);
        assert!(!s.axis_compat_exempt);
    }

    #[test]
    fn designated_scopes() {
        assert!(scope_for("crates/core/src/metrics.rs").wall_clock_ok);
        assert!(scope_for("crates/bench/src/experiments/fleetbench.rs").wall_clock_ok);
        assert!(scope_for("crates/core/src/snapshot.rs").float_fmt_applies);
        assert!(scope_for("crates/bench/src/experiments/dynbench.rs").float_fmt_applies);
        assert!(!scope_for("crates/core/src/jsonio.rs").float_fmt_applies);
        assert!(scope_for("crates/core/src/problem.rs").axis_compat_exempt);
        assert!(scope_for("crates/bench/src/experiments/placement.rs").axis_compat_exempt);
        assert!(scope_for("tests/properties.rs").test_file);
        assert!(scope_for("/abs/path/repo/tests/properties.rs").test_file);
    }

    #[test]
    fn adaptive_subsystem_is_fully_strict() {
        // The adaptive path feeds decisions, so nothing in it may be
        // exempt: no wall-clock, no hash-map iteration, no legacy
        // shims, and D3 stays off because these modules never print
        // floats (snapshot.rs serializes their state for them).
        for path in [
            "crates/core/src/costmodel/adaptive.rs",
            "crates/core/src/guardrail.rs",
            "crates/simdb/src/engines/tuplesim.rs",
        ] {
            let s = scope_for(path);
            assert!(!s.test_file, "{path}");
            assert!(!s.wall_clock_ok, "{path}");
            assert!(!s.float_fmt_applies, "{path}");
            assert!(!s.axis_compat_exempt, "{path}");
        }
        // The bench harness driving them keeps its designated
        // measurement/serialization scope.
        let bench = scope_for("crates/bench/src/experiments/adaptbench.rs");
        assert!(bench.wall_clock_ok);
        assert!(bench.float_fmt_applies);
    }

    #[test]
    fn fixtures_are_strict() {
        let s = scope_for("crates/detlint/fixtures/float_fmt.rs");
        assert!(s.float_fmt_applies);
        assert!(!s.axis_compat_exempt);
        assert!(!s.wall_clock_ok);
        assert!(!s.test_file);
    }
}
