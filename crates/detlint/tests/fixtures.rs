//! Self-test over the known-bad fixture snippets: each determinism
//! rule must fire exactly once on its fixture, the pragma-hygiene
//! rules must catch malformed and unused pragmas, and a reasoned
//! pragma must suppress cleanly. The same files back the seeded leg
//! of the CI `detlint` job, which asserts the binary exits nonzero.

use detlint::{lint_file, Finding, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn findings(name: &str) -> Vec<Finding> {
    lint_file(&fixture(name)).expect("fixture reads")
}

fn count_of(findings: &[Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn each_rule_fires_exactly_once_on_its_fixture() {
    for (file, rule) in [
        ("hash_iter.rs", Rule::HashIter),
        ("wall_clock.rs", Rule::WallClock),
        ("float_fmt.rs", Rule::FloatFmt),
        ("axis_compat.rs", Rule::AxisCompat),
        ("unseeded_rng.rs", Rule::UnseededRng),
    ] {
        let found = findings(file);
        assert_eq!(
            found.len(),
            1,
            "{file} must produce exactly one finding, got {found:?}"
        );
        assert_eq!(found[0].rule, rule, "{file} fired the wrong rule");
    }
}

#[test]
fn reasonless_pragma_is_a_finding_and_suppresses_nothing() {
    let found = findings("bad_pragma.rs");
    assert_eq!(count_of(&found, Rule::BadPragma), 1, "{found:?}");
    assert_eq!(count_of(&found, Rule::HashIter), 1, "{found:?}");
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn well_formed_but_idle_pragma_is_flagged_unused() {
    let found = findings("unused_pragma.rs");
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::UnusedPragma);
}

#[test]
fn reasoned_pragma_suppresses_the_violation() {
    let found = findings("suppressed.rs");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn cli_exits_nonzero_on_a_seeded_violation_and_zero_when_clean() {
    let bin = env!("CARGO_BIN_EXE_detlint");
    let bad = Command::new(bin)
        .arg(fixture("hash_iter.rs"))
        .output()
        .expect("binary runs");
    assert_eq!(bad.status.code(), Some(1), "seeded violation must fail");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("hash-iter"), "{stdout}");

    let clean = Command::new(bin)
        .arg(fixture("suppressed.rs"))
        .output()
        .expect("binary runs");
    assert_eq!(clean.status.code(), Some(0), "suppressed file must pass");

    let explain = Command::new(bin)
        .args(["--explain", "hash-iter"])
        .output()
        .expect("binary runs");
    assert_eq!(explain.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&explain.stdout).contains("RandomState"));
}

#[test]
fn json_report_is_parseable_and_complete() {
    let bin = env!("CARGO_BIN_EXE_detlint");
    let out = Command::new(bin)
        .args([
            fixture("bad_pragma.rs").to_str().unwrap(),
            fixture("wall_clock.rs").to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let doc = vda_core::jsonio::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("report parses as JSON");
    assert_eq!(doc.get("files_scanned").and_then(|v| v.as_f64()), Some(2.0));
    let rows = doc.get("findings").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(rows.len(), 3, "bad-pragma + hash-iter + wall-clock");
    for row in rows {
        assert!(row.get("file").is_some());
        assert!(row.get("line").is_some());
        assert!(row.get("rule").is_some());
        assert!(row.get("message").is_some());
    }
}
