//! Binding: name resolution and selectivity estimation.
//!
//! The binder turns a parsed [`Statement`] plus a [`Catalog`] into a
//! [`BoundQuery`] — the relational skeleton the optimizer consumes:
//! base relations with combined local-filter selectivities, join edges
//! with join selectivities, aggregate/sort/limit specs, subplans, and
//! DML write specs.
//!
//! Selectivity estimation uses the classic System-R magic constants
//! that 2008-era PostgreSQL and DB2 actually shipped (equality `1/NDV`,
//! range `1/3`, `LIKE` `1/10`, …). Workload templates can pin any
//! predicate's selectivity with a `/*+ sel p */` hint where the
//! heuristic would misrepresent the intended workload profile.

use crate::catalog::Catalog;
use crate::hash::fnv1a;
use crate::sql::{parse_statement, BinOp, ColRef, Expr, SelectItem, SelectStmt, Statement};
use crate::{DbError, Result};

/// Default selectivity of a range comparison (`<`, `<=`, `>`, `>=`).
pub const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Default selectivity of `BETWEEN`.
pub const DEFAULT_BETWEEN_SEL: f64 = 0.25;
/// Default selectivity of `LIKE`.
pub const DEFAULT_LIKE_SEL: f64 = 0.1;
/// Default selectivity of `IN (subquery)` / `EXISTS (subquery)`.
pub const DEFAULT_SUBQUERY_SEL: f64 = 0.5;
/// Default selectivity of `HAVING` over groups.
pub const DEFAULT_HAVING_SEL: f64 = 0.5;
/// CPU operator count charged per `LIKE` evaluation (pattern matching
/// is costlier than a comparison).
const LIKE_OPS: f64 = 4.0;
/// Minimum projected width in bytes.
const MIN_WIDTH: f64 = 8.0;

/// One base relation of a bound query.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundRelation {
    /// Catalog table name.
    pub table: String,
    /// Effective alias in the query.
    pub alias: String,
    /// Base row count from the catalog.
    pub rows: f64,
    /// Heap pages from the catalog.
    pub pages: f64,
    /// Full row width in bytes.
    pub row_width: f64,
    /// Width of the columns this query actually projects from this
    /// relation (used for sort/hash sizing).
    pub projected_width: f64,
    /// Combined selectivity of all local predicates.
    pub filter_sel: f64,
    /// CPU operators evaluated per scanned row.
    pub filter_ops: f64,
    /// The most selective index-usable local predicate, if any.
    pub index_filter: Option<IndexFilter>,
}

impl BoundRelation {
    /// Rows surviving the local filters.
    pub fn filtered_rows(&self) -> f64 {
        (self.rows * self.filter_sel).max(1.0)
    }
}

/// An index-usable predicate: `column op constant` over an indexed
/// column.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexFilter {
    /// Name of the usable index.
    pub index: String,
    /// Indexed column.
    pub column: String,
    /// Selectivity of the predicate the index can satisfy.
    pub sel: f64,
}

/// An equi-join (or filtered join) edge between two relations.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    /// Index of one endpoint in [`BoundQuery::relations`].
    pub a: usize,
    /// Index of the other endpoint.
    pub b: usize,
    /// Join selectivity applied to the Cartesian product.
    pub sel: f64,
    /// Join column on side `a` for a plain `a.col = b.col` equi-join
    /// (enables index nested loops with `a` as inner).
    pub a_column: Option<String>,
    /// NDV of the side-`a` join column.
    pub a_ndv: f64,
    /// Join column on side `b` (enables index nested loops with `b` as
    /// inner).
    pub b_column: Option<String>,
    /// NDV of the side-`b` join column.
    pub b_ndv: f64,
}

impl JoinEdge {
    /// The join column and NDV for the given endpoint, if this is an
    /// equi-join.
    pub fn column_for(&self, rel: usize) -> Option<(&str, f64)> {
        if rel == self.a {
            self.a_column.as_deref().map(|c| (c, self.a_ndv))
        } else if rel == self.b {
            self.b_column.as_deref().map(|c| (c, self.b_ndv))
        } else {
            None
        }
    }

    /// Whether this edge connects `rel` to any relation in `mask`
    /// (bitmask over relation indexes).
    pub fn connects(&self, mask: u64, rel: usize) -> bool {
        (self.a == rel && mask & (1 << self.b) != 0) || (self.b == rel && mask & (1 << self.a) != 0)
    }
}

/// Grouping/aggregation description.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    /// Estimated number of groups before applying `rows/2` clamping
    /// (product of group-column NDVs; `1` for a full-table aggregate).
    pub group_ndv: f64,
    /// Aggregate/scalar operators evaluated per input row.
    pub ops_per_row: f64,
    /// Selectivity of the `HAVING` clause over groups.
    pub having_sel: f64,
    /// Number of grouping columns (0 for plain aggregates).
    pub group_cols: usize,
}

/// `ORDER BY` description.
#[derive(Debug, Clone, PartialEq)]
pub struct SortSpec {
    /// Number of sort keys.
    pub keys: usize,
}

/// How often a subplan executes.
#[derive(Debug, Clone, PartialEq)]
pub enum Executions {
    /// Uncorrelated: hashed/materialized once.
    Once,
    /// Correlated: re-executed for every qualifying row of the driving
    /// relation.
    PerOuterRow {
        /// Index of the driving relation in the outer query.
        driving_rel: usize,
    },
}

/// A bound subquery attached to the parent.
#[derive(Debug, Clone, PartialEq)]
pub struct SubPlan {
    /// The subquery, bound with correlation predicates folded in as
    /// constant filters.
    pub query: BoundQuery,
    /// Execution multiplicity.
    pub executions: Executions,
}

/// Kind of DML write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// `INSERT`
    Insert,
    /// `UPDATE`
    Update,
    /// `DELETE`
    Delete,
}

/// DML effects of a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteSpec {
    /// Target table.
    pub table: String,
    /// Estimated modified rows.
    pub rows: f64,
    /// Number of indexes needing maintenance.
    pub index_count: usize,
    /// Operation kind.
    pub op: WriteOp,
}

/// The bound form of one SQL statement: everything the optimizer and
/// executor need, with names resolved and selectivities estimated.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    /// Stable identity (FNV-1a of the SQL text; `0` for synthesized
    /// subqueries).
    pub id: u64,
    /// Base relations.
    pub relations: Vec<BoundRelation>,
    /// Join edges between relations.
    pub joins: Vec<JoinEdge>,
    /// Aggregation, if any.
    pub agg: Option<AggregateSpec>,
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Ordering, if any.
    pub sort: Option<SortSpec>,
    /// Row limit, if any.
    pub limit: Option<f64>,
    /// Scalar operators per emitted row (projection arithmetic).
    pub select_ops: f64,
    /// Subplans (correlated and uncorrelated subqueries).
    pub subplans: Vec<SubPlan>,
    /// DML effects, if this is a write statement.
    pub write: Option<WriteSpec>,
}

impl BoundQuery {
    /// Whether this statement modifies data.
    pub fn is_write(&self) -> bool {
        self.write.is_some()
    }
}

/// Parse and bind one SQL statement against `catalog`.
pub fn bind_statement(sql: &str, catalog: &Catalog) -> Result<BoundQuery> {
    let stmt = parse_statement(sql)?;
    let mut bq = bind_parsed(&stmt, catalog)?;
    bq.id = fnv1a(sql);
    Ok(bq)
}

/// Bind an already-parsed statement.
pub fn bind_parsed(stmt: &Statement, catalog: &Catalog) -> Result<BoundQuery> {
    match stmt {
        Statement::Select(s) => Binder::new(catalog).bind_select(s, &[]),
        Statement::Insert(i) => {
            let table = catalog
                .table(&i.table)
                .ok_or_else(|| DbError::Bind(format!("unknown table {}", i.table)))?;
            Ok(BoundQuery {
                id: 0,
                relations: Vec::new(),
                joins: Vec::new(),
                agg: None,
                distinct: false,
                sort: None,
                limit: None,
                select_ops: 0.0,
                subplans: Vec::new(),
                write: Some(WriteSpec {
                    table: table.name.clone(),
                    rows: i.rows.len() as f64,
                    index_count: catalog.indexes_for(&table.name).count(),
                    op: WriteOp::Insert,
                }),
            })
        }
        Statement::Update(u) => {
            let mut select = SelectStmt {
                items: vec![SelectItem::Star],
                from: vec![crate::sql::TableRef {
                    table: u.table.clone(),
                    alias: u.table.clone(),
                }],
                where_clause: u.where_clause.clone(),
                ..SelectStmt::default()
            };
            // Assignment right-hand sides cost operators per row.
            select
                .items
                .extend(u.set.iter().map(|(_, e)| SelectItem::Expr {
                    expr: e.clone(),
                    alias: None,
                }));
            let mut bq = Binder::new(catalog).bind_select(&select, &[])?;
            let rows = bq.relations[0].filtered_rows();
            bq.write = Some(WriteSpec {
                table: bq.relations[0].table.clone(),
                rows,
                index_count: catalog.indexes_for(&bq.relations[0].table).count(),
                op: WriteOp::Update,
            });
            Ok(bq)
        }
        Statement::Delete(d) => {
            let select = SelectStmt {
                items: vec![SelectItem::Star],
                from: vec![crate::sql::TableRef {
                    table: d.table.clone(),
                    alias: d.table.clone(),
                }],
                where_clause: d.where_clause.clone(),
                ..SelectStmt::default()
            };
            let mut bq = Binder::new(catalog).bind_select(&select, &[])?;
            let rows = bq.relations[0].filtered_rows();
            bq.write = Some(WriteSpec {
                table: bq.relations[0].table.clone(),
                rows,
                index_count: catalog.indexes_for(&bq.relations[0].table).count(),
                op: WriteOp::Delete,
            });
            Ok(bq)
        }
    }
}

/// Scope entry for correlation resolution: an alias visible from an
/// enclosing query.
#[derive(Debug, Clone)]
struct OuterAlias {
    alias: String,
    table: String,
}

struct Binder<'a> {
    catalog: &'a Catalog,
}

/// Working state for one SELECT scope.
struct Scope {
    relations: Vec<BoundRelation>,
    joins: Vec<JoinEdge>,
    subplans: Vec<SubPlan>,
    /// Columns referenced in the projection/grouping/ordering, per
    /// relation, for width estimation.
    referenced: Vec<Vec<String>>,
    star: bool,
}

impl Scope {
    fn rel_by_alias(&self, alias: &str) -> Option<usize> {
        self.relations.iter().position(|r| r.alias == alias)
    }
}

/// Where a column resolved to.
enum Resolved {
    /// A relation of the current scope.
    Local {
        rel: usize,
        ndv: f64,
        width: f64,
        column: String,
    },
    /// A relation of an enclosing scope (correlation).
    Outer,
}

impl<'a> Binder<'a> {
    fn new(catalog: &'a Catalog) -> Self {
        Binder { catalog }
    }

    fn bind_select(&self, stmt: &SelectStmt, outer: &[OuterAlias]) -> Result<BoundQuery> {
        let mut scope = Scope {
            relations: Vec::new(),
            joins: Vec::new(),
            subplans: Vec::new(),
            referenced: Vec::new(),
            star: false,
        };

        for tref in &stmt.from {
            let table = self
                .catalog
                .table(&tref.table)
                .ok_or_else(|| DbError::Bind(format!("unknown table {}", tref.table)))?;
            let alias = tref.alias.to_ascii_lowercase();
            if scope.rel_by_alias(&alias).is_some() {
                return Err(DbError::Bind(format!("duplicate alias {alias}")));
            }
            scope.relations.push(BoundRelation {
                table: table.name.clone(),
                alias,
                rows: table.rows,
                pages: table.pages(),
                row_width: table.row_width,
                projected_width: 0.0,
                filter_sel: 1.0,
                filter_ops: 0.0,
                index_filter: None,
            });
            scope.referenced.push(Vec::new());
        }

        // Visible outer scope for subqueries of *this* scope: our
        // relations shadow, then the enclosing chain.
        let mut visible: Vec<OuterAlias> = scope
            .relations
            .iter()
            .map(|r| OuterAlias {
                alias: r.alias.clone(),
                table: r.table.clone(),
            })
            .collect();
        visible.extend(outer.iter().cloned());

        if let Some(pred) = &stmt.where_clause {
            self.bind_predicate(pred, &mut scope, outer, &visible)?;
        }

        // Projection: operator counts and referenced-column tracking.
        let mut select_ops = 0.0;
        let mut has_agg = false;
        for item in &stmt.items {
            match item {
                SelectItem::Star => scope.star = true,
                SelectItem::Expr { expr, .. } => {
                    select_ops += self.expr_ops(expr);
                    if expr.contains_aggregate() {
                        has_agg = true;
                    }
                    self.track_referenced(expr, &mut scope, outer)?;
                }
            }
        }

        // Aggregation.
        let mut agg = None;
        if has_agg || !stmt.group_by.is_empty() {
            let mut group_ndv = 1.0;
            for col in &stmt.group_by {
                if let Resolved::Local {
                    ndv,
                    rel,
                    column,
                    width,
                } = self.resolve_col(col, &scope, outer)?
                {
                    group_ndv *= ndv.max(1.0);
                    note_referenced(&mut scope, rel, &column, width);
                }
            }
            let having_sel = match &stmt.having {
                Some(h) => {
                    select_ops += self.expr_ops(h);
                    // HAVING inputs flow through the aggregation, so
                    // they contribute to the grouped row width.
                    self.track_referenced(h, &mut scope, outer)?;
                    DEFAULT_HAVING_SEL
                }
                None => 1.0,
            };
            agg = Some(AggregateSpec {
                group_ndv,
                ops_per_row: select_ops.max(1.0),
                having_sel,
                group_cols: stmt.group_by.len(),
            });
        }

        for (col, _) in &stmt.order_by {
            if let Resolved::Local {
                rel, column, width, ..
            } = self.resolve_col(col, &scope, outer)?
            {
                note_referenced(&mut scope, rel, &column, width);
            }
        }

        // Projected widths per relation.
        for (i, rel) in scope.relations.iter_mut().enumerate() {
            rel.projected_width = if scope.star {
                rel.row_width
            } else {
                let table = self
                    .catalog
                    .table(&rel.table)
                    .expect("bound table must exist");
                let mut w = 0.0;
                let mut seen: Vec<&str> = Vec::new();
                for c in &scope.referenced[i] {
                    if !seen.contains(&c.as_str()) {
                        seen.push(c);
                        w += table.column(c).map_or(MIN_WIDTH, |cd| cd.avg_width);
                    }
                }
                w.max(MIN_WIDTH)
            };
        }

        Ok(BoundQuery {
            id: 0,
            relations: scope.relations,
            joins: scope.joins,
            agg,
            distinct: stmt.distinct,
            sort: if stmt.order_by.is_empty() {
                None
            } else {
                Some(SortSpec {
                    keys: stmt.order_by.len(),
                })
            },
            limit: stmt.limit.map(|l| l as f64),
            select_ops,
            subplans: scope.subplans,
            write: None,
        })
    }

    /// Bind a predicate tree, attributing selectivity and operator
    /// counts to relations and join edges.
    fn bind_predicate(
        &self,
        pred: &Expr,
        scope: &mut Scope,
        outer: &[OuterAlias],
        visible: &[OuterAlias],
    ) -> Result<()> {
        match pred {
            Expr::And(parts) => {
                for p in parts {
                    self.bind_predicate(p, scope, outer, visible)?;
                }
                Ok(())
            }
            other => self.bind_conjunct(other, scope, outer, visible),
        }
    }

    fn bind_conjunct(
        &self,
        pred: &Expr,
        scope: &mut Scope,
        outer: &[OuterAlias],
        visible: &[OuterAlias],
    ) -> Result<()> {
        match pred {
            Expr::Binary {
                op,
                left,
                right,
                hint_sel,
            } if op.is_comparison() => {
                self.bind_comparison(*op, left, right, *hint_sel, scope, outer, visible)
            }
            Expr::Between { expr, hint_sel, .. } => {
                let sel = hint_sel.unwrap_or(DEFAULT_BETWEEN_SEL);
                self.apply_local_filter(expr, sel, 2.0, None, scope, outer)
            }
            Expr::Like {
                expr,
                negated,
                hint_sel,
                ..
            } => {
                let mut sel = hint_sel.unwrap_or(DEFAULT_LIKE_SEL);
                if *negated {
                    sel = 1.0 - sel;
                }
                self.apply_local_filter(expr, sel, LIKE_OPS, None, scope, outer)
            }
            Expr::InList {
                expr,
                list,
                negated,
                hint_sel,
            } => {
                let sel = match hint_sel {
                    Some(s) => *s,
                    None => match self.resolve_expr_col(expr, scope, outer)? {
                        Some(Resolved::Local { ndv, .. }) => {
                            (list.len() as f64 / ndv.max(1.0)).min(1.0)
                        }
                        _ => DEFAULT_SUBQUERY_SEL,
                    },
                };
                let sel = if *negated { 1.0 - sel } else { sel };
                self.apply_local_filter(expr, sel, list.len() as f64, None, scope, outer)
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
                hint_sel,
            } => {
                let sub = self.bind_subquery(query, scope, outer, visible)?;
                scope.subplans.push(sub);
                let sel = hint_sel.unwrap_or(DEFAULT_SUBQUERY_SEL);
                let sel = if *negated { 1.0 - sel } else { sel };
                self.apply_local_filter(expr, sel, 1.0, None, scope, outer)
            }
            Expr::Exists {
                query,
                negated,
                hint_sel,
            } => {
                let sub = self.bind_subquery(query, scope, outer, visible)?;
                let driving = match &sub.executions {
                    Executions::PerOuterRow { driving_rel } => Some(*driving_rel),
                    Executions::Once => None,
                };
                scope.subplans.push(sub);
                let sel = hint_sel.unwrap_or(DEFAULT_SUBQUERY_SEL);
                let sel = if *negated { 1.0 - sel } else { sel };
                // EXISTS has no tested column; attribute its selectivity
                // to the driving relation (or the first).
                let rel = driving.unwrap_or(0);
                if !scope.relations.is_empty() {
                    apply_to_relation(scope, rel, sel, 1.0, None);
                }
                Ok(())
            }
            Expr::Or(parts) => {
                // Combined OR selectivity: 1 - Π(1 - sᵢ), attributed to
                // the first local column mentioned.
                let mut combined = 1.0;
                let mut ops = 0.0;
                for p in parts {
                    combined *= 1.0 - self.simple_selectivity(p, scope, outer)?;
                    ops += self.expr_ops(p).max(1.0);
                }
                let sel = 1.0 - combined;
                if let Some(col) = first_column(pred) {
                    if let Resolved::Local { rel, .. } = self.resolve_col(&col, scope, outer)? {
                        apply_to_relation(scope, rel, sel, ops, None);
                        return Ok(());
                    }
                }
                if !scope.relations.is_empty() {
                    apply_to_relation(scope, 0, sel, ops, None);
                }
                Ok(())
            }
            Expr::Not(inner) => {
                let sel = 1.0 - self.simple_selectivity(inner, scope, outer)?;
                if let Some(col) = first_column(inner) {
                    if let Resolved::Local { rel, .. } = self.resolve_col(&col, scope, outer)? {
                        apply_to_relation(scope, rel, sel, 1.0, None);
                        return Ok(());
                    }
                }
                Ok(())
            }
            // A bare boolean-ish expression: charge an operator, no
            // selectivity change.
            other => {
                if let Some(col) = first_column(other) {
                    if let Resolved::Local { rel, .. } = self.resolve_col(&col, scope, outer)? {
                        apply_to_relation(scope, rel, 1.0, 1.0, None);
                    }
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn bind_comparison(
        &self,
        op: BinOp,
        left: &Expr,
        right: &Expr,
        hint_sel: Option<f64>,
        scope: &mut Scope,
        outer: &[OuterAlias],
        visible: &[OuterAlias],
    ) -> Result<()> {
        // Scalar-subquery comparisons: bind the subquery, then treat
        // the comparison as a local filter on the column side.
        if let Expr::ScalarSubquery(q) = right {
            let sub = self.bind_subquery(q, scope, outer, visible)?;
            scope.subplans.push(sub);
            let sel = hint_sel.unwrap_or(DEFAULT_RANGE_SEL);
            return self.apply_local_filter(left, sel, 1.0, None, scope, outer);
        }
        if let Expr::ScalarSubquery(q) = left {
            let sub = self.bind_subquery(q, scope, outer, visible)?;
            scope.subplans.push(sub);
            let sel = hint_sel.unwrap_or(DEFAULT_RANGE_SEL);
            return self.apply_local_filter(right, sel, 1.0, None, scope, outer);
        }

        let lcol = self.resolve_expr_col(left, scope, outer)?;
        let rcol = self.resolve_expr_col(right, scope, outer)?;

        match (lcol, rcol) {
            // column-op-column across two local relations: join edge.
            (
                Some(Resolved::Local {
                    rel: ra,
                    ndv: nda,
                    column: ca,
                    ..
                }),
                Some(Resolved::Local {
                    rel: rb,
                    ndv: ndb,
                    column: cb,
                    ..
                }),
            ) if ra != rb => {
                let sel = match (hint_sel, op) {
                    (Some(s), _) => s,
                    (None, BinOp::Eq) => 1.0 / nda.max(ndb).max(1.0),
                    (None, _) => DEFAULT_RANGE_SEL,
                };
                let eq = op == BinOp::Eq;
                scope.joins.push(JoinEdge {
                    a: ra,
                    b: rb,
                    sel,
                    a_column: eq.then_some(ca),
                    a_ndv: nda,
                    b_column: eq.then_some(cb),
                    b_ndv: ndb,
                });
                Ok(())
            }
            // column-op-constant (or outer correlation treated as a
            // constant): local filter.
            (
                Some(Resolved::Local {
                    rel, ndv, column, ..
                }),
                other,
            ) => {
                let is_plain_const = other.is_none()
                    && matches!(right, Expr::Number(_) | Expr::Str(_))
                    || matches!(other, Some(Resolved::Outer));
                let sel = match (hint_sel, op) {
                    (Some(s), _) => s,
                    (None, BinOp::Eq) => 1.0 / ndv.max(1.0),
                    (None, BinOp::Ne) => 1.0 - 1.0 / ndv.max(1.0),
                    (None, _) => DEFAULT_RANGE_SEL,
                };
                // Equality on an indexed column is index-usable; so are
                // ranges, at their estimated selectivity.
                let index = if is_plain_const || matches!(other, Some(Resolved::Outer)) {
                    self.catalog
                        .index_on(&scope.relations[rel].table, &column)
                        .map(|ix| IndexFilter {
                            index: ix.name.clone(),
                            column: column.clone(),
                            sel,
                        })
                } else {
                    None
                };
                apply_to_relation(scope, rel, sel, 1.0, index);
                Ok(())
            }
            (
                None,
                Some(Resolved::Local {
                    rel, ndv, column, ..
                }),
            ) => {
                let sel = match (hint_sel, op) {
                    (Some(s), _) => s,
                    (None, BinOp::Eq) => 1.0 / ndv.max(1.0),
                    (None, BinOp::Ne) => 1.0 - 1.0 / ndv.max(1.0),
                    (None, _) => DEFAULT_RANGE_SEL,
                };
                let index = if matches!(left, Expr::Number(_) | Expr::Str(_)) {
                    self.catalog
                        .index_on(&scope.relations[rel].table, &column)
                        .map(|ix| IndexFilter {
                            index: ix.name.clone(),
                            column: column.clone(),
                            sel,
                        })
                } else {
                    None
                };
                apply_to_relation(scope, rel, sel, 1.0, index);
                Ok(())
            }
            // Pure outer/constant comparisons: no local effect.
            _ => Ok(()),
        }
    }

    /// Apply a local filter to the relation owning the first column of
    /// `expr`.
    fn apply_local_filter(
        &self,
        expr: &Expr,
        sel: f64,
        ops: f64,
        index: Option<IndexFilter>,
        scope: &mut Scope,
        outer: &[OuterAlias],
    ) -> Result<()> {
        if let Some(col) = first_column(expr) {
            if let Resolved::Local { rel, .. } = self.resolve_col(&col, scope, outer)? {
                apply_to_relation(scope, rel, sel, ops, index);
                return Ok(());
            }
        }
        // Constant or purely-outer expression: nothing local to filter.
        Ok(())
    }

    /// Selectivity of a predicate considered in isolation (used for OR
    /// combination).
    fn simple_selectivity(&self, pred: &Expr, scope: &Scope, outer: &[OuterAlias]) -> Result<f64> {
        Ok(match pred {
            Expr::Binary {
                op,
                left,
                right,
                hint_sel,
            } if op.is_comparison() => {
                if let Some(s) = hint_sel {
                    *s
                } else {
                    match op {
                        BinOp::Eq => {
                            let ndv = match self.resolve_expr_col(left, scope, outer)? {
                                Some(Resolved::Local { ndv, .. }) => ndv,
                                _ => match self.resolve_expr_col(right, scope, outer)? {
                                    Some(Resolved::Local { ndv, .. }) => ndv,
                                    _ => 10.0,
                                },
                            };
                            1.0 / ndv.max(1.0)
                        }
                        BinOp::Ne => 0.9,
                        _ => DEFAULT_RANGE_SEL,
                    }
                }
            }
            Expr::Between { hint_sel, .. } => hint_sel.unwrap_or(DEFAULT_BETWEEN_SEL),
            Expr::Like {
                hint_sel, negated, ..
            } => {
                let s = hint_sel.unwrap_or(DEFAULT_LIKE_SEL);
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            Expr::InList { hint_sel, list, .. } => {
                hint_sel.unwrap_or((list.len() as f64 * 0.05).min(1.0))
            }
            Expr::And(parts) => {
                let mut s = 1.0;
                for p in parts {
                    s *= self.simple_selectivity(p, scope, outer)?;
                }
                s
            }
            Expr::Or(parts) => {
                let mut c = 1.0;
                for p in parts {
                    c *= 1.0 - self.simple_selectivity(p, scope, outer)?;
                }
                1.0 - c
            }
            Expr::Not(inner) => 1.0 - self.simple_selectivity(inner, scope, outer)?,
            _ => DEFAULT_RANGE_SEL,
        })
    }

    fn bind_subquery(
        &self,
        query: &SelectStmt,
        scope: &Scope,
        _outer: &[OuterAlias],
        visible: &[OuterAlias],
    ) -> Result<SubPlan> {
        let bound = self.bind_select(query, visible)?;
        // Correlated if the subquery references any alias of *this*
        // scope: detect by re-walking its column refs against our
        // relations minus its own.
        let mut driving: Option<usize> = None;
        let mut check = |col: &ColRef| {
            if let Some(q) = &col.qualifier {
                if bound.relations.iter().any(|r| &r.alias == q) {
                    return;
                }
                if let Some(idx) = scope.rel_by_alias(q) {
                    driving.get_or_insert(idx);
                }
            } else {
                // Unqualified: correlated only if no inner relation has
                // the column but an outer one does.
                let inner_has = bound.relations.iter().any(|r| {
                    self.catalog
                        .table(&r.table)
                        .is_some_and(|t| t.column(&col.column).is_some())
                });
                if !inner_has {
                    for (idx, r) in scope.relations.iter().enumerate() {
                        if self
                            .catalog
                            .table(&r.table)
                            .is_some_and(|t| t.column(&col.column).is_some())
                        {
                            driving.get_or_insert(idx);
                            break;
                        }
                    }
                }
            }
        };
        walk_select_columns(query, &mut check);
        Ok(SubPlan {
            query: bound,
            executions: match driving {
                Some(driving_rel) => Executions::PerOuterRow { driving_rel },
                None => Executions::Once,
            },
        })
    }

    /// Resolve a column reference against local relations, then outer
    /// scopes.
    fn resolve_col(&self, col: &ColRef, scope: &Scope, outer: &[OuterAlias]) -> Result<Resolved> {
        if let Some(q) = &col.qualifier {
            let q = q.to_ascii_lowercase();
            if let Some(rel) = scope.rel_by_alias(&q) {
                let table = self
                    .catalog
                    .table(&scope.relations[rel].table)
                    .expect("bound table must exist");
                let cd = table
                    .column(&col.column.to_ascii_lowercase())
                    .ok_or_else(|| DbError::Bind(format!("unknown column {q}.{}", col.column)))?;
                return Ok(Resolved::Local {
                    rel,
                    ndv: cd.ndv,
                    width: cd.avg_width,
                    column: cd.name.clone(),
                });
            }
            if outer.iter().any(|o| o.alias == q) {
                return Ok(Resolved::Outer);
            }
            return Err(DbError::Bind(format!("unknown alias {q}")));
        }
        // Unqualified: first local relation owning the column wins.
        let name = col.column.to_ascii_lowercase();
        for (rel, r) in scope.relations.iter().enumerate() {
            if let Some(cd) = self.catalog.table(&r.table).and_then(|t| t.column(&name)) {
                return Ok(Resolved::Local {
                    rel,
                    ndv: cd.ndv,
                    width: cd.avg_width,
                    column: cd.name.clone(),
                });
            }
        }
        for o in outer {
            if self
                .catalog
                .table(&o.table)
                .is_some_and(|t| t.column(&name).is_some())
            {
                return Ok(Resolved::Outer);
            }
        }
        Err(DbError::Bind(format!("unknown column {}", col.column)))
    }

    /// Resolve the column underlying an expression, if the expression
    /// is column-rooted (a bare column or arithmetic over one column).
    fn resolve_expr_col(
        &self,
        expr: &Expr,
        scope: &Scope,
        outer: &[OuterAlias],
    ) -> Result<Option<Resolved>> {
        match first_column(expr) {
            Some(col) => self.resolve_col(&col, scope, outer).map(Some),
            None => Ok(None),
        }
    }

    /// Count scalar operators an expression evaluates per row.
    fn expr_ops(&self, expr: &Expr) -> f64 {
        let mut n = 0.0;
        expr.visit(&mut |e| match e {
            Expr::Binary { .. } | Expr::Agg { .. } => n += 1.0,
            Expr::Func { args, .. } => n += 1.0 + args.len() as f64,
            Expr::Like { .. } => n += LIKE_OPS,
            Expr::Between { .. } => n += 2.0,
            _ => {}
        });
        n
    }

    fn track_referenced(&self, expr: &Expr, scope: &mut Scope, outer: &[OuterAlias]) -> Result<()> {
        let mut cols = Vec::new();
        expr.visit(&mut |e| {
            if let Expr::Column(c) = e {
                cols.push(c.clone());
            }
        });
        for c in cols {
            if let Resolved::Local {
                rel, column, width, ..
            } = self.resolve_col(&c, scope, outer)?
            {
                note_referenced(scope, rel, &column, width);
            }
        }
        Ok(())
    }
}

fn note_referenced(scope: &mut Scope, rel: usize, column: &str, _width: f64) {
    let list = &mut scope.referenced[rel];
    if !list.iter().any(|c| c == column) {
        list.push(column.to_string());
    }
}

fn apply_to_relation(
    scope: &mut Scope,
    rel: usize,
    sel: f64,
    ops: f64,
    index: Option<IndexFilter>,
) {
    let r = &mut scope.relations[rel];
    r.filter_sel = (r.filter_sel * sel).clamp(0.0, 1.0);
    r.filter_ops += ops;
    if let Some(ix) = index {
        let better = r.index_filter.as_ref().is_none_or(|old| ix.sel < old.sel);
        if better {
            r.index_filter = Some(ix);
        }
    }
}

/// First column reference in an expression, in visit order.
fn first_column(expr: &Expr) -> Option<ColRef> {
    let mut found = None;
    expr.visit(&mut |e| {
        if found.is_none() {
            if let Expr::Column(c) = e {
                found = Some(c.clone());
            }
        }
    });
    found
}

/// Walk all column references in a select statement (without entering
/// nested subqueries — their correlation is handled when they are bound
/// themselves).
fn walk_select_columns(stmt: &SelectStmt, f: &mut impl FnMut(&ColRef)) {
    let visit_expr = |e: &Expr, f: &mut dyn FnMut(&ColRef)| {
        e.visit(&mut |x| {
            if let Expr::Column(c) = x {
                f(c);
            }
        });
    };
    for item in &stmt.items {
        if let SelectItem::Expr { expr, .. } = item {
            visit_expr(expr, f);
        }
    }
    if let Some(w) = &stmt.where_clause {
        visit_expr(w, f);
    }
    for c in &stmt.group_by {
        f(c);
    }
    if let Some(h) = &stmt.having {
        visit_expr(h, f);
    }
    for (c, _) in &stmt.order_by {
        f(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{table, IndexDef};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(table(
            "orders",
            1_500_000.0,
            120.0,
            &[
                ("o_orderkey", 1_500_000.0, 8.0),
                ("o_custkey", 100_000.0, 8.0),
                ("o_totalprice", 1_000_000.0, 8.0),
                ("o_orderdate", 2_400.0, 8.0),
            ],
        ));
        c.add_table(table(
            "lineitem",
            6_000_000.0,
            140.0,
            &[
                ("l_orderkey", 1_500_000.0, 8.0),
                ("l_partkey", 200_000.0, 8.0),
                ("l_quantity", 50.0, 8.0),
                ("l_extendedprice", 1_000_000.0, 8.0),
            ],
        ));
        c.add_index(IndexDef {
            name: "orders_pk".into(),
            table: "orders".into(),
            column: "o_orderkey".into(),
        })
        .unwrap();
        c.add_index(IndexDef {
            name: "lineitem_ok".into(),
            table: "lineitem".into(),
            column: "l_orderkey".into(),
        })
        .unwrap();
        c
    }

    #[test]
    fn binds_single_table_with_eq_filter() {
        let q = bind_statement(
            "SELECT o_totalprice FROM orders WHERE o_custkey = 42",
            &cat(),
        )
        .unwrap();
        assert_eq!(q.relations.len(), 1);
        let r = &q.relations[0];
        assert!((r.filter_sel - 1.0 / 100_000.0).abs() < 1e-12);
        assert!(r.index_filter.is_none()); // o_custkey is not indexed
    }

    #[test]
    fn equality_on_indexed_column_is_index_usable() {
        let q = bind_statement("SELECT * FROM orders WHERE o_orderkey = 7", &cat()).unwrap();
        let ix = q.relations[0].index_filter.as_ref().unwrap();
        assert_eq!(ix.index, "orders_pk");
        assert!((ix.sel - 1.0 / 1_500_000.0).abs() < 1e-12);
    }

    #[test]
    fn join_edge_with_classic_selectivity() {
        let q = bind_statement(
            "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey",
            &cat(),
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        let e = &q.joins[0];
        assert!((e.sel - 1.0 / 1_500_000.0).abs() < 1e-18);
        assert_eq!(e.b_column.as_deref(), Some("l_orderkey"));
    }

    #[test]
    fn hint_overrides_selectivity() {
        let q = bind_statement(
            "SELECT * FROM lineitem WHERE l_quantity < 24 /*+ sel 0.45 */",
            &cat(),
        )
        .unwrap();
        assert!((q.relations[0].filter_sel - 0.45).abs() < 1e-12);
    }

    #[test]
    fn group_by_produces_aggregate_spec() {
        let q = bind_statement(
            "SELECT o_custkey, sum(o_totalprice) FROM orders GROUP BY o_custkey",
            &cat(),
        )
        .unwrap();
        let agg = q.agg.as_ref().unwrap();
        assert!((agg.group_ndv - 100_000.0).abs() < 1e-9);
        assert_eq!(agg.group_cols, 1);
    }

    #[test]
    fn plain_aggregate_has_single_group() {
        let q = bind_statement("SELECT count(*) FROM lineitem", &cat()).unwrap();
        let agg = q.agg.as_ref().unwrap();
        assert_eq!(agg.group_ndv, 1.0);
        assert_eq!(agg.group_cols, 0);
    }

    #[test]
    fn correlated_subquery_detected() {
        let q = bind_statement(
            "SELECT * FROM orders o WHERE o_totalprice > \
             (SELECT avg(l_extendedprice) FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
            &cat(),
        )
        .unwrap();
        assert_eq!(q.subplans.len(), 1);
        assert!(matches!(
            q.subplans[0].executions,
            Executions::PerOuterRow { driving_rel: 0 }
        ));
        // Correlation predicate acts as an indexed equality filter in
        // the subquery.
        let inner = &q.subplans[0].query.relations[0];
        assert!(inner.index_filter.is_some());
        assert!(inner.filter_sel < 1e-5);
    }

    #[test]
    fn uncorrelated_subquery_runs_once() {
        let q = bind_statement(
            "SELECT * FROM orders WHERE o_custkey IN (SELECT l_partkey FROM lineitem)",
            &cat(),
        )
        .unwrap();
        assert_eq!(q.subplans.len(), 1);
        assert!(matches!(q.subplans[0].executions, Executions::Once));
    }

    #[test]
    fn update_produces_write_spec() {
        let q = bind_statement(
            "UPDATE orders SET o_totalprice = o_totalprice + 1 WHERE o_orderkey = 5",
            &cat(),
        )
        .unwrap();
        let w = q.write.as_ref().unwrap();
        assert_eq!(w.op, WriteOp::Update);
        assert_eq!(w.index_count, 1);
        assert!((w.rows - 1.0).abs() < 1e-9);
    }

    #[test]
    fn insert_counts_rows() {
        let q = bind_statement(
            "INSERT INTO orders VALUES (1, 2, 3, 4), (5, 6, 7, 8)",
            &cat(),
        )
        .unwrap();
        let w = q.write.as_ref().unwrap();
        assert_eq!(w.op, WriteOp::Insert);
        assert_eq!(w.rows, 2.0);
    }

    #[test]
    fn delete_estimates_affected_rows() {
        let q = bind_statement("DELETE FROM lineitem WHERE l_partkey = 9", &cat()).unwrap();
        let w = q.write.as_ref().unwrap();
        assert_eq!(w.op, WriteOp::Delete);
        assert!((w.rows - 6_000_000.0 / 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_names_are_errors() {
        assert!(bind_statement("SELECT * FROM nope", &cat()).is_err());
        assert!(bind_statement("SELECT bogus FROM orders", &cat()).is_err());
        assert!(bind_statement("SELECT o.bogus FROM orders o", &cat()).is_err());
        assert!(bind_statement("SELECT x.o_orderkey FROM orders o", &cat()).is_err());
    }

    #[test]
    fn duplicate_alias_is_an_error() {
        assert!(bind_statement("SELECT * FROM orders o, lineitem o", &cat()).is_err());
    }

    #[test]
    fn projected_width_tracks_referenced_columns() {
        let narrow = bind_statement("SELECT o_orderkey FROM orders", &cat()).unwrap();
        let wide = bind_statement("SELECT * FROM orders", &cat()).unwrap();
        assert!(narrow.relations[0].projected_width < wide.relations[0].projected_width);
        assert_eq!(wide.relations[0].projected_width, 120.0);
    }

    #[test]
    fn or_predicates_combine_disjunctively() {
        let q = bind_statement(
            "SELECT * FROM lineitem WHERE l_quantity = 1 OR l_quantity = 2",
            &cat(),
        )
        .unwrap();
        let expect = 1.0 - (1.0 - 0.02) * (1.0 - 0.02);
        assert!((q.relations[0].filter_sel - expect).abs() < 1e-9);
    }

    #[test]
    fn query_id_is_stable_hash_of_text() {
        let a = bind_statement("SELECT count(*) FROM orders", &cat()).unwrap();
        let b = bind_statement("SELECT count(*) FROM orders", &cat()).unwrap();
        let c = bind_statement("SELECT count(*) FROM lineitem", &cat()).unwrap();
        assert_eq!(a.id, b.id);
        assert_ne!(a.id, c.id);
    }
}
