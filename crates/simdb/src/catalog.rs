//! Catalog: table, column, and index statistics for the simulated
//! engines.
//!
//! Both simulated optimizers estimate costs from the same classic
//! statistics a 2008-era system kept: row counts, row widths, column
//! distinct-value counts (NDV), and single-column B-tree indexes with
//! derived height and leaf page counts.

use crate::{DbError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Database page size in bytes shared by both simulated engines
/// (PostgreSQL's 8 KiB, which the paper's calibration programs also
/// use).
pub const PAGE_BYTES: f64 = 8192.0;

/// Approximate number of index entries per B-tree leaf page.
const INDEX_ENTRIES_PER_LEAF: f64 = 256.0;

/// B-tree fanout used to derive index height.
const INDEX_FANOUT: f64 = 256.0;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (lower-cased on insertion).
    pub name: String,
    /// Number of distinct values.
    pub ndv: f64,
    /// Average stored width in bytes.
    pub avg_width: f64,
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name (lower-cased).
    pub name: String,
    /// Row count.
    pub rows: f64,
    /// Average row width in bytes.
    pub row_width: f64,
    /// Column statistics in declaration order.
    pub columns: Vec<ColumnDef>,
}

impl TableDef {
    /// Heap pages occupied by the table.
    pub fn pages(&self) -> f64 {
        (self.rows * self.row_width / PAGE_BYTES).max(1.0)
    }

    /// Look up a column by (lower-cased) name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// A single-column B-tree index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Indexed table (lower-cased).
    pub table: String,
    /// Indexed column (lower-cased).
    pub column: String,
}

impl IndexDef {
    /// Leaf pages given the indexed table's row count.
    pub fn leaf_pages(&self, table_rows: f64) -> f64 {
        (table_rows / INDEX_ENTRIES_PER_LEAF).max(1.0)
    }

    /// Height of the B-tree (root-to-leaf internal page reads).
    pub fn height(&self, table_rows: f64) -> f64 {
        let leaves = self.leaf_pages(table_rows);
        (leaves.ln() / INDEX_FANOUT.ln()).ceil().max(1.0)
    }
}

/// The catalog of one simulated database instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
    indexes: Vec<IndexDef>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table; names are lower-cased for case-insensitive SQL.
    pub fn add_table(&mut self, mut table: TableDef) -> &mut Self {
        table.name = table.name.to_ascii_lowercase();
        for c in &mut table.columns {
            c.name = c.name.to_ascii_lowercase();
        }
        self.tables.insert(table.name.clone(), table);
        self
    }

    /// Register a single-column index; fails if the table or column is
    /// unknown.
    pub fn add_index(&mut self, index: IndexDef) -> Result<&mut Self> {
        let mut index = index;
        index.table = index.table.to_ascii_lowercase();
        index.column = index.column.to_ascii_lowercase();
        let table = self
            .tables
            .get(&index.table)
            .ok_or_else(|| DbError::Catalog(format!("index over unknown table {}", index.table)))?;
        if table.column(&index.column).is_none() {
            return Err(DbError::Catalog(format!(
                "index over unknown column {}.{}",
                index.table, index.column
            )));
        }
        self.indexes.push(index);
        Ok(self)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// All registered tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values()
    }

    /// The index over `table.column`, if any.
    pub fn index_on(&self, table: &str, column: &str) -> Option<&IndexDef> {
        let t = table.to_ascii_lowercase();
        let c = column.to_ascii_lowercase();
        self.indexes.iter().find(|i| i.table == t && i.column == c)
    }

    /// All indexes over `table`.
    pub fn indexes_for(&self, table: &str) -> impl Iterator<Item = &IndexDef> {
        let t = table.to_ascii_lowercase();
        self.indexes.iter().filter(move |i| i.table == t)
    }

    /// Total heap pages over all tables — the working-set size used by
    /// cache modelling.
    pub fn total_pages(&self) -> f64 {
        self.tables.values().map(TableDef::pages).sum()
    }

    /// Stable identity of the catalog's statistics. Two catalogs with
    /// the same signature produce the same optimizer estimates, so the
    /// advisor's shared estimate caches key entries by it. Tables live
    /// in a `BTreeMap`, making the `Debug` rendering deterministic.
    pub fn signature(&self) -> u64 {
        crate::hash::fnv1a(&format!("{:?}", self))
    }
}

/// Convenience builder for tests and workload catalogs.
pub fn table(name: &str, rows: f64, row_width: f64, columns: &[(&str, f64, f64)]) -> TableDef {
    TableDef {
        name: name.to_string(),
        rows,
        row_width,
        columns: columns
            .iter()
            .map(|&(n, ndv, w)| ColumnDef {
                name: n.to_string(),
                ndv,
                avg_width: w,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(table(
            "Orders",
            1_500_000.0,
            120.0,
            &[
                ("o_orderkey", 1_500_000.0, 8.0),
                ("o_custkey", 100_000.0, 8.0),
            ],
        ));
        cat.add_index(IndexDef {
            name: "orders_pk".into(),
            table: "orders".into(),
            column: "o_orderkey".into(),
        })
        .unwrap();
        cat
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let cat = sample();
        assert!(cat.table("ORDERS").is_some());
        assert!(cat.table("orders").is_some());
        assert!(cat.table("nope").is_none());
    }

    #[test]
    fn pages_derived_from_rows_and_width() {
        let cat = sample();
        let t = cat.table("orders").unwrap();
        let expect = 1_500_000.0 * 120.0 / PAGE_BYTES;
        assert!((t.pages() - expect).abs() < 1e-6);
    }

    #[test]
    fn index_registration_validates_target() {
        let mut cat = sample();
        let bad = IndexDef {
            name: "x".into(),
            table: "orders".into(),
            column: "missing".into(),
        };
        assert!(cat.add_index(bad).is_err());
        let worse = IndexDef {
            name: "y".into(),
            table: "missing".into(),
            column: "c".into(),
        };
        assert!(cat.add_index(worse).is_err());
    }

    #[test]
    fn index_geometry_is_positive_and_monotone() {
        let idx = IndexDef {
            name: "i".into(),
            table: "t".into(),
            column: "c".into(),
        };
        assert!(idx.leaf_pages(1000.0) >= 1.0);
        assert!(idx.leaf_pages(1e8) > idx.leaf_pages(1e4));
        assert!(idx.height(1e8) >= idx.height(1e4));
        assert!(idx.height(100.0) >= 1.0);
    }

    #[test]
    fn index_lookup_by_table_and_column() {
        let cat = sample();
        assert!(cat.index_on("orders", "o_orderkey").is_some());
        assert!(cat.index_on("orders", "o_custkey").is_none());
        assert_eq!(cat.indexes_for("orders").count(), 1);
    }

    #[test]
    fn total_pages_sums_tables() {
        let cat = sample();
        assert!((cat.total_pages() - cat.table("orders").unwrap().pages()).abs() < 1e-9);
    }
}
