//! The DB2-like engine.

use super::{
    EngineQuirks, MemoryConfig, TrueCycleCosts, TuningPolicy, WorkMemRule, OS_RESERVE_MB,
    PAGES_PER_MB,
};
use crate::plan::CostFactors;
use serde::{Deserialize, Serialize};
use vda_vmm::VmPerf;

/// Milliseconds per timeron: the engine-internal normalization constant
/// relating DB2-style cost units to time on the reference hardware.
/// Deliberately **not** exposed through any engine API used by the
/// advisor — the advisor must recover the ms↔timeron relation by linear
/// regression over calibration queries, exactly as §4.2 prescribes.
pub(super) const MS_PER_TIMERON: f64 = 0.075;

/// "Instructions" DB2's model charges per tuple processed. The DB2
/// `cpuspeed` parameter is milliseconds per instruction, so these
/// constants translate tuple/operator work into instruction counts.
/// They match the engine's true executor cycle costs — DB2's cost
/// model knows its own executor.
const INSTR_PER_TUPLE: f64 = 2600.0;
/// Instructions per operator evaluation.
const INSTR_PER_OPERATOR: f64 = 2800.0;
/// Instructions per index entry examined.
const INSTR_PER_INDEX_TUPLE: f64 = 1800.0;

/// DB2's optimizer configuration parameters (Table III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Db2Params {
    /// CPU speed in milliseconds per instruction (descriptive).
    pub cpuspeed_ms_per_instr: f64,
    /// Overhead of a single random I/O in milliseconds (descriptive).
    pub overhead_ms: f64,
    /// Time to transfer one data page in milliseconds (descriptive).
    pub transfer_rate_ms: f64,
    /// Sort heap, MB (prescriptive).
    pub sortheap_mb: f64,
    /// Buffer pool, MB (prescriptive).
    pub bufferpool_mb: f64,
}

/// The DB2-like engine definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Db2Sim {
    /// Ground-truth executor cycle costs.
    pub cycles: TrueCycleCosts,
    /// Estimate/actual divergence profile.
    pub quirks: EngineQuirks,
    /// Memory tuning policy.
    pub policy: TuningPolicy,
}

impl Default for Db2Sim {
    fn default() -> Self {
        Db2Sim {
            // A slightly leaner executor than PgSim, reflecting the
            // commercial engine's edge in the paper's CPU experiments.
            cycles: TrueCycleCosts {
                tuple: 2600.0,
                operator: 2800.0,
                index_tuple: 1800.0,
            },
            quirks: EngineQuirks {
                return_row_cycles: 600.0,
                stmt_overhead_cycles: 10_000_000.0,
                lock_cycles: 70_000.0,
                contention_coef: 0.6,
                // §7.9: the DB2 optimizer "underestimates the effect of
                // increasing the sort heap on performance" — actual
                // spill I/O is three times the modeled spill I/O, so the
                // real benefit of more sort memory is 3× the estimate.
                spill_actual_factor: 3.0,
                update_io_factor: 2.0,
                oltp_cpu_factor: 1.5,
            },
            // §4.3: "we set bufferpool to 70% of the free memory on the
            // virtual machine and allocate the remainder to sortheap".
            policy: TuningPolicy::Proportional {
                os_reserve_mb: OS_RESERVE_MB,
                buffer_frac: 0.7,
                work: WorkMemRule::Fraction(0.3),
            },
        }
    }
}

impl Db2Sim {
    /// The fixed-memory policy of the paper's CPU-only experiments
    /// (190 MB buffer pool, 40 MB sort heap on 512 MB VMs).
    pub fn fixed_memory_policy() -> TuningPolicy {
        TuningPolicy::Fixed {
            buffer_mb: 190.0,
            work_mb: 40.0,
        }
    }

    /// Map parameters to neutral cost factors (native unit: one
    /// timeron).
    pub fn factors(&self, p: &Db2Params) -> CostFactors {
        let t = MS_PER_TIMERON;
        CostFactors {
            seq_page: p.transfer_rate_ms / t,
            rand_page: (p.overhead_ms + p.transfer_rate_ms) / t,
            cpu_tuple: p.cpuspeed_ms_per_instr * INSTR_PER_TUPLE / t,
            cpu_operator: p.cpuspeed_ms_per_instr * INSTR_PER_OPERATOR / t,
            cpu_index_tuple: p.cpuspeed_ms_per_instr * INSTR_PER_INDEX_TUPLE / t,
            work_mem_pages: p.sortheap_mb * PAGES_PER_MB,
            // DB2 does direct I/O: only the buffer pool keeps pages
            // warm; the OS cache is not consulted.
            buffer_pages: p.bufferpool_mb * PAGES_PER_MB,
        }
    }

    /// Parameters an ideal calibration would produce for a VM.
    ///
    /// The "instruction" DB2's `cpuspeed` is measured over is pinned to
    /// one machine cycle: the stand-alone measurement program (§4.3)
    /// times a unit-cycle loop, so `cpuspeed = 1000 / effective Hz`.
    pub fn true_params(&self, perf: &VmPerf) -> Db2Params {
        let mem = self.policy.apply(perf.memory_mb);
        Db2Params {
            cpuspeed_ms_per_instr: 1e3 / perf.cpu_hz,
            overhead_ms: (perf.rand_page_secs - perf.seq_page_secs) * 1e3,
            transfer_rate_ms: perf.seq_page_secs * 1e3,
            sortheap_mb: mem.work_mb,
            bufferpool_mb: mem.buffer_mb,
        }
    }

    /// Instruction-count constants, exposed for the executor: the same
    /// translation must price estimated and actual CPU work.
    pub fn instr_constants() -> (f64, f64, f64) {
        (INSTR_PER_TUPLE, INSTR_PER_OPERATOR, INSTR_PER_INDEX_TUPLE)
    }

    /// The memory configuration adopted on a VM with `vm_memory_mb`.
    pub fn tuning(&self, vm_memory_mb: f64) -> MemoryConfig {
        self.policy.apply(vm_memory_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_70_30() {
        let e = Db2Sim::default();
        let cfg = e.tuning(1264.0);
        assert!((cfg.buffer_mb - 0.7 * 1024.0).abs() < 1e-9);
        assert!((cfg.work_mb - 0.3 * 1024.0).abs() < 1e-9);
    }

    #[test]
    fn timeron_costs_scale_with_parameters() {
        let e = Db2Sim::default();
        let p = Db2Params {
            cpuspeed_ms_per_instr: 1e-7,
            overhead_ms: 7.0,
            transfer_rate_ms: 0.2,
            sortheap_mb: 40.0,
            bufferpool_mb: 190.0,
        };
        let f = e.factors(&p);
        assert!((f.seq_page - 0.2 / MS_PER_TIMERON).abs() < 1e-9);
        assert!((f.rand_page - 7.2 / MS_PER_TIMERON).abs() < 1e-9);
        let doubled = Db2Params {
            cpuspeed_ms_per_instr: 2e-7,
            ..p
        };
        let f2 = e.factors(&doubled);
        assert!((f2.cpu_tuple / f.cpu_tuple - 2.0).abs() < 1e-9);
    }

    #[test]
    fn spill_quirk_marks_underestimated_sort_benefit() {
        assert!(Db2Sim::default().quirks.spill_actual_factor > 1.0);
    }
}
