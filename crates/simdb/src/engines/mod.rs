//! The simulated database engines.
//!
//! [`PgSim`] mirrors PostgreSQL 8.1.3: its optimizer parameters are the
//! seven of Table II, and estimated costs are expressed in units of one
//! sequential page fetch. [`Db2Sim`] mirrors DB2 v9: the five
//! parameters of Table III, with estimated costs expressed in
//! *timerons*, a synthetic unit related to milliseconds by a constant
//! the engine does not publish — which is why the advisor renormalizes
//! DB2-style costs by regressing measured runtimes against timeron
//! estimates (§4.2). [`TupleSim`] is a third, structurally different
//! family: a flat table of per-tuple/per-page unit charges whose
//! native unit (the work of scanning one tuple) is likewise
//! unpublished and recovered by regression.
//!
//! Each engine owns:
//!
//! * a mapping from its parameters to the neutral [`CostFactors`] the
//!   shared optimizer consumes,
//! * a **tuning policy** (how a VM memory grant is split into buffer
//!   pool and sort/work memory — the prescriptive parameters of §4.3),
//! * the **ground-truth** per-tuple/operator cycle costs its executor
//!   exhibits, from which perfectly-calibrated "true" parameters can be
//!   derived for any VM configuration, and
//! * [`EngineQuirks`]: the deliberate estimate/actual divergences the
//!   paper observed (unmodeled result-return cost, lock contention and
//!   update overhead on OLTP, DB2's underestimated sort-spill penalty).

mod db2sim;
mod pgsim;
mod tuplesim;

pub use db2sim::{Db2Params, Db2Sim};
pub use pgsim::{PgParams, PgSim};
pub use tuplesim::{TupleParams, TupleSim};

use crate::plan::CostFactors;
use serde::{Deserialize, Serialize};
use vda_vmm::VmPerf;

/// Pages per megabyte at the shared 8 KiB page size.
pub const PAGES_PER_MB: f64 = 128.0;

/// Which engine a component refers to.
///
/// `Ord` follows declaration order (PgSim < Db2Sim), which is *not*
/// alphabetical by [`name`](Self::name) — code that needs name order
/// (e.g. the snapshot registry) must sort by name explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// The PostgreSQL-like engine.
    PgSim,
    /// The DB2-like engine.
    Db2Sim,
    /// The tuple-cost engine.
    TupleSim,
}

impl EngineKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::PgSim => "pgsim",
            EngineKind::Db2Sim => "db2sim",
            EngineKind::TupleSim => "tuplesim",
        }
    }
}

/// Optimizer configuration parameters for either engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineParams {
    /// PostgreSQL-like parameters (Table II).
    Pg(PgParams),
    /// DB2-like parameters (Table III).
    Db2(Db2Params),
    /// Tuple-cost unit charges.
    Tuple(TupleParams),
}

/// The division of a VM's memory grant decided by the engine's tuning
/// policy: the prescriptive side of calibration (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Buffer pool, MB.
    pub buffer_mb: f64,
    /// Per-operator sort/work memory, MB.
    pub work_mb: f64,
    /// Remaining memory usable as OS page cache, MB (zero for engines
    /// doing direct I/O).
    pub os_cache_mb: f64,
}

/// How the engine's configuration tracks the VM memory grant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TuningPolicy {
    /// Fixed settings regardless of VM memory (the paper's CPU-only
    /// experiments: PostgreSQL 32 MB buffers / 5 MB work_mem, DB2
    /// 190 MB buffer pool / 40 MB sort heap).
    Fixed {
        /// Buffer pool, MB.
        buffer_mb: f64,
        /// Work/sort memory, MB.
        work_mb: f64,
    },
    /// Settings scale with the VM memory grant (the paper's memory
    /// experiments).
    Proportional {
        /// Memory reserved for the OS, MB.
        os_reserve_mb: f64,
        /// Fraction of (grant − reserve) given to the buffer pool.
        buffer_frac: f64,
        /// Fraction of (grant − reserve) given to work memory, or a
        /// fixed size.
        work: WorkMemRule,
    },
}

/// Work-memory sizing rule inside [`TuningPolicy::Proportional`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkMemRule {
    /// Fixed MB (PostgreSQL's `work_mem = 5MB` policy).
    FixedMb(f64),
    /// Fraction of (grant − reserve) (DB2's sort-heap policy).
    Fraction(f64),
}

impl TuningPolicy {
    /// Apply the policy to a memory grant.
    pub fn apply(&self, vm_memory_mb: f64) -> MemoryConfig {
        match *self {
            TuningPolicy::Fixed { buffer_mb, work_mb } => {
                let used = buffer_mb + work_mb;
                MemoryConfig {
                    buffer_mb,
                    work_mb,
                    os_cache_mb: (vm_memory_mb - used - OS_RESERVE_MB).max(0.0),
                }
            }
            TuningPolicy::Proportional {
                os_reserve_mb,
                buffer_frac,
                work,
            } => {
                let avail = (vm_memory_mb - os_reserve_mb).max(1.0);
                let buffer_mb = buffer_frac * avail;
                let work_mb = match work {
                    WorkMemRule::FixedMb(mb) => mb.min(avail * 0.5),
                    WorkMemRule::Fraction(f) => f * avail,
                };
                MemoryConfig {
                    buffer_mb,
                    work_mb,
                    os_cache_mb: (avail - buffer_mb - work_mb).max(0.0),
                }
            }
        }
    }
}

/// Default OS memory reserve, MB (the paper leaves 240 MB for the OS).
pub const OS_RESERVE_MB: f64 = 240.0;

/// Ground-truth CPU cycle costs of the engine's executor. The "true"
/// optimizer parameters for a VM are derived from these plus the VM's
/// effective clock and disk timings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrueCycleCosts {
    /// Cycles to process one tuple.
    pub tuple: f64,
    /// Cycles per operator evaluation.
    pub operator: f64,
    /// Cycles per index entry examined.
    pub index_tuple: f64,
}

/// Deliberate estimate/actual divergences (§7.8–7.9): everything here
/// affects only the *executor*, never the optimizer's estimates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineQuirks {
    /// Cycles to return one result row to the client (unmodeled by
    /// optimizers, §4.3).
    pub return_row_cycles: f64,
    /// Per-statement-execution CPU overhead (parsing, optimization,
    /// latching, client round trip), scaled by the contention factor.
    /// Irrelevant for long DSS queries, dominant for short OLTP
    /// statements under concurrency — the §7.8 "optimizer cost model
    /// does not accurately capture contention or update costs".
    pub stmt_overhead_cycles: f64,
    /// Cycles per row lock (unmodeled; the dominant OLTP CPU cost the
    /// paper's optimizers missed).
    pub lock_cycles: f64,
    /// Lock cost grows as `1 + coef·(clients − 1)` with concurrency.
    pub contention_coef: f64,
    /// Actual spill I/O relative to the modeled spill I/O. `> 1` means
    /// the optimizer *underestimates* the benefit of more sort memory —
    /// DB2's sort-heap blind spot in §7.9.
    pub spill_actual_factor: f64,
    /// Actual write amplification relative to modeled page writes.
    pub update_io_factor: f64,
    /// Actual CPU multiplier applied to write statements (update path
    /// work the optimizers do not cost).
    pub oltp_cpu_factor: f64,
}

/// One of the two simulated engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Engine {
    /// PostgreSQL-like engine.
    Pg(PgSim),
    /// DB2-like engine.
    Db2(Db2Sim),
    /// Tuple-cost engine.
    Tuple(TupleSim),
}

impl Engine {
    /// A PostgreSQL-like engine with the paper's proportional memory
    /// policy (buffers = 10/16 of VM memory, work_mem fixed at 5 MB).
    pub fn pg() -> Self {
        Engine::Pg(PgSim::default())
    }

    /// A DB2-like engine with the paper's proportional memory policy
    /// (70 % of free memory to the buffer pool, the rest to sort heap).
    pub fn db2() -> Self {
        Engine::Db2(Db2Sim::default())
    }

    /// A tuple-cost engine with its default memory policy (half of
    /// free memory to the tuple cache, a quarter to the sort area).
    pub fn tuple() -> Self {
        Engine::Tuple(TupleSim::default())
    }

    /// Engine discriminator.
    pub fn kind(&self) -> EngineKind {
        match self {
            Engine::Pg(_) => EngineKind::PgSim,
            Engine::Db2(_) => EngineKind::Db2Sim,
            Engine::Tuple(_) => EngineKind::TupleSim,
        }
    }

    /// Replace the memory tuning policy.
    #[must_use]
    pub fn with_policy(mut self, policy: TuningPolicy) -> Self {
        match &mut self {
            Engine::Pg(e) => e.policy = policy,
            Engine::Db2(e) => e.policy = policy,
            Engine::Tuple(e) => e.policy = policy,
        }
        self
    }

    /// Replace the quirk profile (used by tests and ablations).
    #[must_use]
    pub fn with_quirks(mut self, quirks: EngineQuirks) -> Self {
        match &mut self {
            Engine::Pg(e) => e.quirks = quirks,
            Engine::Db2(e) => e.quirks = quirks,
            Engine::Tuple(e) => e.quirks = quirks,
        }
        self
    }

    /// The tuning policy in effect.
    pub fn policy(&self) -> &TuningPolicy {
        match self {
            Engine::Pg(e) => &e.policy,
            Engine::Db2(e) => &e.policy,
            Engine::Tuple(e) => &e.policy,
        }
    }

    /// Memory configuration the engine adopts on a VM with the given
    /// grant.
    pub fn tuning(&self, vm_memory_mb: f64) -> MemoryConfig {
        self.policy().apply(vm_memory_mb)
    }

    /// Ground-truth executor cycle costs.
    pub fn cycles(&self) -> &TrueCycleCosts {
        match self {
            Engine::Pg(e) => &e.cycles,
            Engine::Db2(e) => &e.cycles,
            Engine::Tuple(e) => &e.cycles,
        }
    }

    /// The estimate/actual divergence profile.
    pub fn quirks(&self) -> &EngineQuirks {
        match self {
            Engine::Pg(e) => &e.quirks,
            Engine::Db2(e) => &e.quirks,
            Engine::Tuple(e) => &e.quirks,
        }
    }

    /// Map engine parameters onto the neutral cost factors the shared
    /// optimizer consumes.
    ///
    /// # Panics
    ///
    /// Panics if `params` belongs to the other engine — parameters are
    /// never interchangeable between DBMSes.
    pub fn factors(&self, params: &EngineParams) -> CostFactors {
        match (self, params) {
            (Engine::Pg(e), EngineParams::Pg(p)) => e.factors(p),
            (Engine::Db2(e), EngineParams::Db2(p)) => e.factors(p),
            (Engine::Tuple(e), EngineParams::Tuple(p)) => e.factors(p),
            (engine, params) => panic!(
                "parameter kind mismatch: engine {:?} given {:?}",
                engine.kind(),
                std::mem::discriminant(params)
            ),
        }
    }

    /// The parameters an *ideal* calibration would produce for a VM
    /// with performance `perf`: descriptive parameters derived from
    /// the true hardware timings, prescriptive ones from the tuning
    /// policy. The executor plans with these; the advisor's measured
    /// calibration should approximate them (validated in vda-core).
    pub fn true_params(&self, perf: &VmPerf) -> EngineParams {
        match self {
            Engine::Pg(e) => EngineParams::Pg(e.true_params(perf)),
            Engine::Db2(e) => EngineParams::Db2(e.true_params(perf)),
            Engine::Tuple(e) => EngineParams::Tuple(e.true_params(perf)),
        }
    }

    /// Seconds represented by one native cost unit on hardware where a
    /// sequential page read takes `seq_page_secs`. Used only by tests
    /// and the experiment harness to sanity-check renormalization; the
    /// advisor itself *measures* this factor (§4.2).
    pub fn native_unit_seconds(&self, seq_page_secs: f64) -> f64 {
        match self {
            Engine::Pg(_) => seq_page_secs,
            Engine::Db2(_) => db2sim::MS_PER_TIMERON / 1e3,
            Engine::Tuple(_) => tuplesim::SECS_PER_TUPLE_UNIT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vda_vmm::{Hypervisor, PhysicalMachine, VmConfig};

    fn perf(cpu: f64, mem: f64) -> VmPerf {
        Hypervisor::new(PhysicalMachine::paper_testbed()).perf_for(VmConfig::new(cpu, mem).unwrap())
    }

    #[test]
    fn fixed_policy_ignores_grant() {
        let p = TuningPolicy::Fixed {
            buffer_mb: 32.0,
            work_mb: 5.0,
        };
        let small = p.apply(512.0);
        let large = p.apply(4096.0);
        assert_eq!(small.buffer_mb, 32.0);
        assert_eq!(large.buffer_mb, 32.0);
        assert!(large.os_cache_mb > small.os_cache_mb);
    }

    #[test]
    fn proportional_policy_tracks_grant() {
        let p = TuningPolicy::Proportional {
            os_reserve_mb: 240.0,
            buffer_frac: 0.7,
            work: WorkMemRule::Fraction(0.3),
        };
        let cfg = p.apply(1264.0);
        assert!((cfg.buffer_mb - 0.7 * 1024.0).abs() < 1e-9);
        assert!((cfg.work_mb - 0.3 * 1024.0).abs() < 1e-9);
        assert!(cfg.os_cache_mb.abs() < 1e-9);
    }

    #[test]
    fn pg_true_params_scale_with_cpu_share() {
        let e = Engine::pg();
        let (lo, hi) = (perf(0.25, 0.5), perf(0.75, 0.5));
        let (EngineParams::Pg(plo), EngineParams::Pg(phi)) =
            (e.true_params(&lo), e.true_params(&hi))
        else {
            panic!("wrong params kind")
        };
        // cpu_tuple_cost is linear in 1/share: tripling the share
        // divides the parameter by 3.
        assert!((plo.cpu_tuple_cost / phi.cpu_tuple_cost - 3.0).abs() < 1e-9);
        // random_page_cost is independent of the CPU share.
        assert!((plo.random_page_cost - phi.random_page_cost).abs() < 1e-12);
    }

    #[test]
    fn db2_true_params_scale_with_cpu_share() {
        let e = Engine::db2();
        let (lo, hi) = (perf(0.2, 0.5), perf(0.8, 0.5));
        let (EngineParams::Db2(plo), EngineParams::Db2(phi)) =
            (e.true_params(&lo), e.true_params(&hi))
        else {
            panic!("wrong params kind")
        };
        assert!((plo.cpuspeed_ms_per_instr / phi.cpuspeed_ms_per_instr - 4.0).abs() < 1e-9);
        assert_eq!(plo.transfer_rate_ms, phi.transfer_rate_ms);
        assert_eq!(plo.overhead_ms, phi.overhead_ms);
    }

    #[test]
    fn memory_changes_prescriptive_params_only() {
        let e = Engine::db2();
        let (lo, hi) = (perf(0.5, 0.25), perf(0.5, 0.75));
        let (EngineParams::Db2(plo), EngineParams::Db2(phi)) =
            (e.true_params(&lo), e.true_params(&hi))
        else {
            panic!("wrong params kind")
        };
        assert!(phi.sortheap_mb > plo.sortheap_mb);
        assert!(phi.bufferpool_mb > plo.bufferpool_mb);
        assert_eq!(plo.cpuspeed_ms_per_instr, phi.cpuspeed_ms_per_instr);
    }

    #[test]
    #[should_panic(expected = "parameter kind mismatch")]
    fn params_are_not_interchangeable() {
        let pg = Engine::pg();
        let db2_params = Engine::db2().true_params(&perf(0.5, 0.5));
        let _ = pg.factors(&db2_params);
    }

    #[test]
    fn factors_follow_parameters() {
        let e = Engine::pg();
        let params = e.true_params(&perf(0.5, 0.5));
        let f = e.factors(&params);
        assert!(
            (f.seq_page - 1.0).abs() < 1e-12,
            "pg costs in seq-page units"
        );
        assert!(f.rand_page > 1.0);
        assert!(f.cpu_tuple > 0.0 && f.cpu_tuple < 1.0);
        assert!(f.work_mem_pages > 0.0);
    }
}
