//! The PostgreSQL-like engine.

use super::{
    EngineQuirks, MemoryConfig, TrueCycleCosts, TuningPolicy, WorkMemRule, OS_RESERVE_MB,
    PAGES_PER_MB,
};
use crate::plan::CostFactors;
use serde::{Deserialize, Serialize};
use vda_vmm::VmPerf;

/// PostgreSQL's optimizer configuration parameters (Table II of the
/// paper). Costs are normalized so one sequential page fetch costs 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PgParams {
    /// Cost of a non-sequential page fetch, in sequential-page units
    /// (descriptive).
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple (descriptive).
    pub cpu_tuple_cost: f64,
    /// CPU cost per predicate/operator evaluation (descriptive).
    pub cpu_operator_cost: f64,
    /// CPU cost of processing one index entry (descriptive).
    pub cpu_index_tuple_cost: f64,
    /// Shared buffer pool size, MB (prescriptive).
    pub shared_buffers_mb: f64,
    /// Per-operator sort/hash memory, MB (prescriptive).
    pub work_mem_mb: f64,
    /// Assumed OS file-cache size, MB (descriptive).
    pub effective_cache_size_mb: f64,
}

impl PgParams {
    /// The stock `postgresql.conf` defaults of the 8.1 era: the
    /// parameters a fresh, uncalibrated installation would use.
    pub fn stock_defaults() -> Self {
        PgParams {
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_operator_cost: 0.0025,
            cpu_index_tuple_cost: 0.005,
            shared_buffers_mb: 32.0,
            work_mem_mb: 5.0,
            effective_cache_size_mb: 1000.0,
        }
    }
}

/// The PostgreSQL-like engine definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PgSim {
    /// Ground-truth executor cycle costs.
    pub cycles: TrueCycleCosts,
    /// Estimate/actual divergence profile.
    pub quirks: EngineQuirks,
    /// Memory tuning policy.
    pub policy: TuningPolicy,
}

impl Default for PgSim {
    fn default() -> Self {
        PgSim {
            // Plausible for a 2008-era interpreted row-store executor:
            // a few thousand cycles to pull a tuple through an
            // operator, comparable work per expression evaluation.
            cycles: TrueCycleCosts {
                tuple: 3000.0,
                operator: 3000.0,
                index_tuple: 2000.0,
            },
            quirks: EngineQuirks {
                return_row_cycles: 800.0,
                stmt_overhead_cycles: 12_000_000.0,
                lock_cycles: 60_000.0,
                contention_coef: 0.5,
                spill_actual_factor: 1.0,
                update_io_factor: 2.0,
                oltp_cpu_factor: 1.6,
            },
            // §4.3: "set shared_buffers to 10/16 of the memory available
            // in the host virtual machine, and work_mem to 5 MB
            // regardless of the amount of memory available".
            policy: TuningPolicy::Proportional {
                os_reserve_mb: OS_RESERVE_MB,
                buffer_frac: 10.0 / 16.0,
                work: WorkMemRule::FixedMb(5.0),
            },
        }
    }
}

impl PgSim {
    /// The fixed-memory policy of the paper's CPU-only experiments
    /// (`shared_buffers = 32MB`, `work_mem = 5MB`).
    pub fn fixed_memory_policy() -> TuningPolicy {
        TuningPolicy::Fixed {
            buffer_mb: 32.0,
            work_mb: 5.0,
        }
    }

    /// Map parameters to neutral cost factors (native unit: one
    /// sequential page fetch).
    pub fn factors(&self, p: &PgParams) -> CostFactors {
        CostFactors {
            seq_page: 1.0,
            rand_page: p.random_page_cost,
            cpu_tuple: p.cpu_tuple_cost,
            cpu_operator: p.cpu_operator_cost,
            cpu_index_tuple: p.cpu_index_tuple_cost,
            work_mem_pages: p.work_mem_mb * PAGES_PER_MB,
            // PostgreSQL reads through the OS cache: shared buffers and
            // the file cache both keep pages warm.
            buffer_pages: (p.shared_buffers_mb + p.effective_cache_size_mb) * PAGES_PER_MB,
        }
    }

    /// Parameters an ideal calibration would produce for a VM.
    pub fn true_params(&self, perf: &VmPerf) -> PgParams {
        let mem = self.policy.apply(perf.memory_mb);
        let seq = perf.seq_page_secs;
        let cycle_secs = 1.0 / perf.cpu_hz;
        PgParams {
            random_page_cost: perf.rand_page_secs / seq,
            cpu_tuple_cost: self.cycles.tuple * cycle_secs / seq,
            cpu_operator_cost: self.cycles.operator * cycle_secs / seq,
            cpu_index_tuple_cost: self.cycles.index_tuple * cycle_secs / seq,
            shared_buffers_mb: mem.buffer_mb,
            work_mem_mb: mem.work_mb,
            effective_cache_size_mb: mem.os_cache_mb,
        }
    }

    /// The memory configuration adopted on a VM with `vm_memory_mb`.
    pub fn tuning(&self, vm_memory_mb: f64) -> MemoryConfig {
        self.policy.apply(vm_memory_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_defaults_have_classic_ratios() {
        let p = PgParams::stock_defaults();
        assert_eq!(p.random_page_cost, 4.0);
        assert!((p.cpu_tuple_cost / p.cpu_operator_cost - 4.0).abs() < 1e-12);
        assert!((p.cpu_tuple_cost / p.cpu_index_tuple_cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_policy_is_ten_sixteenths() {
        let e = PgSim::default();
        let cfg = e.tuning(1600.0);
        assert!((cfg.buffer_mb - 1000.0 * (1600.0 - 240.0) / 1600.0 * 0.0).abs() >= 0.0);
        // buffer = 10/16 of available (grant − reserve)
        assert!((cfg.buffer_mb - (1600.0 - 240.0) * 10.0 / 16.0).abs() < 1e-9);
        assert_eq!(cfg.work_mb, 5.0);
    }

    #[test]
    fn factors_include_os_cache() {
        let e = PgSim::default();
        let mut p = PgParams::stock_defaults();
        p.shared_buffers_mb = 100.0;
        p.effective_cache_size_mb = 300.0;
        let f = e.factors(&p);
        assert!((f.buffer_pages - 400.0 * PAGES_PER_MB).abs() < 1e-9);
    }
}
