//! The tuple-cost engine.
//!
//! [`TupleSim`] models the third family of optimizers: engines whose
//! cost model is a flat table of **per-tuple work units** (one constant
//! per scan tuple, index entry, operator evaluation, page transfer,
//! and seek) instead of PostgreSQL's page-normalized parameters or
//! DB2's instruction/`cpuspeed` formulation. Its native cost unit is
//! "the work of scanning one tuple on the reference hardware", so
//! CPU and I/O response curves *emerge* from how many unit charges a
//! plan accrues rather than from closed-form parameter curves — the
//! calibrator has to recover both the per-axis unit charges and the
//! unit↔seconds relation by regression, exactly like the DB2 path.

use super::{
    EngineQuirks, MemoryConfig, TrueCycleCosts, TuningPolicy, WorkMemRule, OS_RESERVE_MB,
    PAGES_PER_MB,
};
use crate::plan::CostFactors;
use serde::{Deserialize, Serialize};
use vda_vmm::VmPerf;

/// Seconds per tuple unit: the engine-internal normalization constant
/// relating tuple-cost units to time on the reference hardware.
/// Deliberately **not** exposed through any engine API used by the
/// advisor — like DB2's timeron, the advisor must recover the
/// unit↔seconds relation by linear regression over calibration
/// queries (§4.2).
pub(super) const SECS_PER_TUPLE_UNIT: f64 = 1.25e-6;

/// Optimizer configuration parameters of the tuple-cost engine: five
/// descriptive unit charges plus the two prescriptive memory knobs.
/// All unit charges are expressed in tuple units (the cost of scanning
/// one tuple is the engine's 1.0 by construction on reference
/// hardware, and scales with the VM's effective clock like every other
/// CPU charge).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TupleParams {
    /// Units charged per tuple scanned (descriptive).
    pub scan_tuple_units: f64,
    /// Units charged per index entry examined (descriptive).
    pub index_tuple_units: f64,
    /// Units charged per operator/predicate evaluation (descriptive).
    pub op_units: f64,
    /// Units charged per data page transferred (descriptive).
    pub page_units: f64,
    /// Extra units charged per non-sequential page (seek; descriptive).
    pub seek_units: f64,
    /// Sort/work memory, MB (prescriptive).
    pub sort_mb: f64,
    /// Tuple cache (buffer pool), MB (prescriptive).
    pub cache_mb: f64,
}

/// The tuple-cost engine definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleSim {
    /// Ground-truth executor cycle costs.
    pub cycles: TrueCycleCosts,
    /// Estimate/actual divergence profile.
    pub quirks: EngineQuirks,
    /// Memory tuning policy.
    pub policy: TuningPolicy,
}

impl Default for TupleSim {
    fn default() -> Self {
        TupleSim {
            // A vectorized-leaning executor: tuples are a bit more
            // expensive to materialize than PgSim's, but operator
            // evaluation amortizes across batches and index probes are
            // cheap.
            cycles: TrueCycleCosts {
                tuple: 3400.0,
                operator: 2200.0,
                index_tuple: 1500.0,
            },
            quirks: EngineQuirks {
                return_row_cycles: 700.0,
                stmt_overhead_cycles: 9_000_000.0,
                lock_cycles: 50_000.0,
                contention_coef: 0.4,
                // The flat unit table prices spills at face value but
                // batches write-backs poorly.
                spill_actual_factor: 1.5,
                update_io_factor: 2.5,
                oltp_cpu_factor: 1.4,
            },
            // Half of free memory to the tuple cache, a quarter to the
            // sort area; the rest is left to the OS (the engine does
            // direct I/O, so it buys nothing back).
            policy: TuningPolicy::Proportional {
                os_reserve_mb: OS_RESERVE_MB,
                buffer_frac: 0.5,
                work: WorkMemRule::Fraction(0.25),
            },
        }
    }
}

impl TupleSim {
    /// The fixed-memory policy of CPU-only experiments (128 MB tuple
    /// cache, 24 MB sort area).
    pub fn fixed_memory_policy() -> TuningPolicy {
        TuningPolicy::Fixed {
            buffer_mb: 128.0,
            work_mb: 24.0,
        }
    }

    /// Map parameters to neutral cost factors (native unit: one tuple
    /// unit — the work of scanning one tuple on reference hardware).
    pub fn factors(&self, p: &TupleParams) -> CostFactors {
        CostFactors {
            seq_page: p.page_units,
            rand_page: p.page_units + p.seek_units,
            cpu_tuple: p.scan_tuple_units,
            cpu_operator: p.op_units,
            cpu_index_tuple: p.index_tuple_units,
            work_mem_pages: p.sort_mb * PAGES_PER_MB,
            // Direct I/O: only the tuple cache keeps pages warm.
            buffer_pages: p.cache_mb * PAGES_PER_MB,
        }
    }

    /// Parameters an ideal calibration would produce for a VM: each
    /// unit charge is the real per-item time divided by the reference
    /// tuple-unit duration.
    pub fn true_params(&self, perf: &VmPerf) -> TupleParams {
        let mem = self.policy.apply(perf.memory_mb);
        let unit = SECS_PER_TUPLE_UNIT;
        let cycle_secs = 1.0 / perf.cpu_hz;
        TupleParams {
            scan_tuple_units: self.cycles.tuple * cycle_secs / unit,
            index_tuple_units: self.cycles.index_tuple * cycle_secs / unit,
            op_units: self.cycles.operator * cycle_secs / unit,
            page_units: perf.seq_page_secs / unit,
            seek_units: (perf.rand_page_secs - perf.seq_page_secs) / unit,
            sort_mb: mem.work_mb,
            cache_mb: mem.buffer_mb,
        }
    }

    /// The memory configuration adopted on a VM with `vm_memory_mb`.
    pub fn tuning(&self, vm_memory_mb: f64) -> MemoryConfig {
        self.policy.apply(vm_memory_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vda_vmm::{Hypervisor, PhysicalMachine, VmConfig};

    fn perf(cpu: f64, mem: f64) -> VmPerf {
        Hypervisor::new(PhysicalMachine::paper_testbed()).perf_for(VmConfig::new(cpu, mem).unwrap())
    }

    #[test]
    fn default_policy_splits_half_and_quarter() {
        let e = TupleSim::default();
        let cfg = e.tuning(1264.0);
        assert!((cfg.buffer_mb - 0.5 * 1024.0).abs() < 1e-9);
        assert!((cfg.work_mb - 0.25 * 1024.0).abs() < 1e-9);
        assert!((cfg.os_cache_mb - 0.25 * 1024.0).abs() < 1e-9);
    }

    #[test]
    fn unit_charges_scale_with_cpu_share() {
        let e = TupleSim::default();
        let (lo, hi) = (perf(0.25, 0.5), perf(0.75, 0.5));
        let (plo, phi) = (e.true_params(&lo), e.true_params(&hi));
        // CPU unit charges are linear in 1/share; I/O charges are not.
        assert!((plo.scan_tuple_units / phi.scan_tuple_units - 3.0).abs() < 1e-9);
        assert!((plo.op_units / phi.op_units - 3.0).abs() < 1e-9);
        assert_eq!(plo.page_units, phi.page_units);
        assert_eq!(plo.seek_units, phi.seek_units);
    }

    #[test]
    fn factors_charge_seeks_on_random_pages_only() {
        let e = TupleSim::default();
        let p = e.true_params(&perf(0.5, 0.5));
        let f = e.factors(&p);
        assert!((f.rand_page - f.seq_page - p.seek_units).abs() < 1e-12);
        assert!(f.cpu_tuple > 0.0);
        assert!((f.buffer_pages - p.cache_mb * PAGES_PER_MB).abs() < 1e-9);
    }
}
