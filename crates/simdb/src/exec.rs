//! The analytic executor: actual workload runtimes on a configured VM.
//!
//! The executor is the simulation's ground truth. Given a bound query,
//! the engine hosting it, and the [`VmPerf`] of the VM it runs on, the
//! executor:
//!
//! 1. derives the engine's *actual* configuration from the VM (tuning
//!    policy + true hardware timings),
//! 2. lets the engine's optimizer choose the plan it would really run,
//! 3. charges the plan's work counters against the VM's CPU clock and
//!    disk service times — **including** the costs the optimizer does
//!    not model: result return, row-lock contention scaled by client
//!    concurrency, write amplification, and the engine's spill-cost
//!    quirk (DB2's underestimated sort-heap benefit, §7.9).
//!
//! Because step 3 uses true per-unit costs while estimation uses the
//! calibrated optimizer model, estimated and actual costs track each
//! other closely for well-modeled DSS queries and diverge exactly where
//! the paper reports divergence (OLTP, DB2 sort memory). Online
//! refinement (vda-core) closes that gap from observations.

use crate::bind::BoundQuery;
use crate::catalog::Catalog;
use crate::engines::Engine;
use crate::optimizer::Optimizer;
use crate::plan::{PhysicalPlan, WRITE_PAGE_FACTOR};
use serde::{Deserialize, Serialize};
use vda_vmm::VmPerf;

/// Runtime context of a statement: how many clients issue it
/// concurrently (drives lock contention for OLTP workloads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecContext {
    /// Concurrent clients issuing this statement (≥ 1).
    pub concurrency: f64,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext { concurrency: 1.0 }
    }
}

/// Measured outcome of executing one statement once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// CPU component.
    pub cpu_seconds: f64,
    /// I/O component.
    pub io_seconds: f64,
    /// Signature of the plan the engine actually ran.
    pub plan_signature: u64,
}

/// The executor for one engine instance over one database.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    engine: &'a Engine,
    catalog: &'a Catalog,
}

impl<'a> Executor<'a> {
    /// Create an executor.
    pub fn new(engine: &'a Engine, catalog: &'a Catalog) -> Self {
        Executor { engine, catalog }
    }

    /// The plan the engine would actually run on this VM (its optimizer
    /// driven by true hardware-derived parameters and the tuning
    /// policy's memory split).
    pub fn actual_plan(&self, query: &BoundQuery, perf: &VmPerf) -> PhysicalPlan {
        let params = self.engine.true_params(perf);
        Optimizer::new(self.catalog, self.engine.factors(&params)).plan(query)
    }

    /// Execute one statement once; returns its measured runtime.
    pub fn execute(&self, query: &BoundQuery, perf: &VmPerf, ctx: &ExecContext) -> ExecOutcome {
        let plan = self.actual_plan(query, perf);
        self.run_plan(&plan, query.is_write(), perf, ctx)
    }

    /// Charge an already-chosen plan against the VM.
    pub fn run_plan(
        &self,
        plan: &PhysicalPlan,
        is_write: bool,
        perf: &VmPerf,
        ctx: &ExecContext,
    ) -> ExecOutcome {
        let c = &plan.counters;
        let cy = self.engine.cycles();
        let quirks = self.engine.quirks();

        // Modeled CPU work at true per-unit costs; write statements pay
        // the update-path multiplier the optimizer does not know about.
        let mut cpu_cycles = c.cpu_tuples * cy.tuple
            + c.cpu_operators * cy.operator
            + c.cpu_index_tuples * cy.index_tuple;
        if is_write {
            cpu_cycles *= quirks.oltp_cpu_factor;
        }
        // Unmodeled CPU: per-statement overhead, result return, and
        // lock contention.
        let contention = 1.0 + quirks.contention_coef * (ctx.concurrency.max(1.0) - 1.0);
        cpu_cycles += quirks.stmt_overhead_cycles * contention;
        cpu_cycles += c.rows_returned * quirks.return_row_cycles;
        cpu_cycles += c.lock_requests * quirks.lock_cycles * contention;

        let cpu_seconds = perf.cpu_secs(cpu_cycles);

        let seq_equiv_pages = c.seq_pages
            + c.spill_pages * quirks.spill_actual_factor
            + c.write_pages * WRITE_PAGE_FACTOR * quirks.update_io_factor;
        let io_seconds = perf.seq_io_secs(seq_equiv_pages) + perf.rand_io_secs(c.rand_pages);

        ExecOutcome {
            seconds: cpu_seconds + io_seconds,
            cpu_seconds,
            io_seconds,
            plan_signature: plan.signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_statement;
    use crate::catalog::{table, Catalog, IndexDef};
    use vda_vmm::{Hypervisor, PhysicalMachine, VmConfig};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(table(
            "lineitem",
            6_000_000.0,
            140.0,
            &[
                ("l_orderkey", 1_500_000.0, 8.0),
                ("l_partkey", 200_000.0, 8.0),
                ("l_quantity", 50.0, 8.0),
            ],
        ));
        c.add_table(table(
            "stock",
            100_000.0,
            300.0,
            &[("s_i_id", 100_000.0, 8.0), ("s_quantity", 100.0, 8.0)],
        ));
        c.add_index(IndexDef {
            name: "stock_pk".into(),
            table: "stock".into(),
            column: "s_i_id".into(),
        })
        .unwrap();
        c
    }

    fn perf(cpu: f64, mem: f64) -> VmPerf {
        Hypervisor::new(PhysicalMachine::paper_testbed()).perf_for(VmConfig::new(cpu, mem).unwrap())
    }

    #[test]
    fn more_cpu_makes_cpu_bound_queries_faster() {
        let c = cat();
        let engine = Engine::pg();
        let exec = Executor::new(&engine, &c);
        // Aggregation over a hinted-selective scan: CPU-dominated once
        // the buffer pool holds the table.
        let q = bind_statement(
            "SELECT l_partkey, count(*) FROM lineitem GROUP BY l_partkey",
            &c,
        )
        .unwrap();
        let slow = exec.execute(&q, &perf(0.2, 0.8), &ExecContext::default());
        let fast = exec.execute(&q, &perf(0.8, 0.8), &ExecContext::default());
        assert!(fast.seconds < slow.seconds);
        assert!(fast.cpu_seconds < slow.cpu_seconds);
        // I/O time does not improve with CPU share.
        assert!((fast.io_seconds - slow.io_seconds).abs() / slow.io_seconds < 0.05);
    }

    #[test]
    fn contention_slows_updates_under_concurrency() {
        let c = cat();
        let engine = Engine::db2();
        let exec = Executor::new(&engine, &c);
        let q = bind_statement(
            "UPDATE stock SET s_quantity = s_quantity - 1 WHERE s_i_id = 77",
            &c,
        )
        .unwrap();
        let alone = exec.execute(&q, &perf(0.5, 0.5), &ExecContext { concurrency: 1.0 });
        let crowded = exec.execute(&q, &perf(0.5, 0.5), &ExecContext { concurrency: 10.0 });
        assert!(crowded.seconds > alone.seconds);
    }

    #[test]
    fn actual_exceeds_renormalized_estimate_for_writes() {
        // The optimizer never charges locks or the update-path CPU; the
        // executor does. For an OLTP statement the actual runtime must
        // exceed the estimate-derived runtime.
        let c = cat();
        let engine = Engine::pg();
        let exec = Executor::new(&engine, &c);
        let q = bind_statement("UPDATE stock SET s_quantity = 0 WHERE s_i_id = 5", &c).unwrap();
        let p = perf(0.5, 0.5);
        let plan = exec.actual_plan(&q, &p);
        let est_seconds = plan.native_cost * engine.native_unit_seconds(p.seq_page_secs);
        let actual = exec.execute(&q, &p, &ExecContext { concurrency: 8.0 });
        assert!(
            actual.seconds > est_seconds,
            "actual {} vs estimate {}",
            actual.seconds,
            est_seconds
        );
    }

    #[test]
    fn estimate_tracks_actual_for_well_modeled_dss() {
        // A read-only aggregate returning one row has almost no
        // unmodeled cost: the renormalized estimate should land within
        // a few percent of the actual runtime.
        let c = cat();
        let engine = Engine::pg();
        let exec = Executor::new(&engine, &c);
        let q = bind_statement("SELECT count(*) FROM lineitem", &c).unwrap();
        let p = perf(0.5, 0.5);
        let plan = exec.actual_plan(&q, &p);
        let est = plan.native_cost * engine.native_unit_seconds(p.seq_page_secs);
        let act = exec.execute(&q, &p, &ExecContext::default()).seconds;
        let err = (est - act).abs() / act;
        assert!(err < 0.05, "relative error {err} (est {est}, act {act})");
    }

    #[test]
    fn db2_spill_quirk_inflates_actual_io() {
        let c = cat();
        let quiet = Engine::db2();
        let mut no_quirk = match &quiet {
            Engine::Db2(e) => e.quirks,
            _ => unreachable!(),
        };
        no_quirk.spill_actual_factor = 1.0;
        let honest = Engine::db2().with_quirks(no_quirk);

        // A full-width sort of lineitem (~840 MB) cannot fit the sort
        // heap at a 10 % memory grant: the sort spills.
        let q = bind_statement("SELECT * FROM lineitem ORDER BY l_quantity", &c).unwrap();
        let p = perf(0.5, 0.1);
        let with_quirk = Executor::new(&quiet, &c).execute(&q, &p, &ExecContext::default());
        let without = Executor::new(&honest, &c).execute(&q, &p, &ExecContext::default());
        assert!(
            with_quirk.io_seconds > without.io_seconds,
            "{} vs {}",
            with_quirk.io_seconds,
            without.io_seconds
        );
    }

    #[test]
    fn plan_signature_changes_with_memory_grant() {
        let c = cat();
        let engine = Engine::db2();
        let exec = Executor::new(&engine, &c);
        let q = bind_statement("SELECT * FROM lineitem ORDER BY l_quantity", &c).unwrap();
        // 5 % of memory: the sort spills; 90 %: it runs in memory.
        let small = exec.execute(&q, &perf(0.5, 0.05), &ExecContext::default());
        let large = exec.execute(&q, &perf(0.5, 0.9), &ExecContext::default());
        assert_ne!(small.plan_signature, large.plan_signature);
    }
}
