//! Tiny deterministic hashing (FNV-1a) used for query identities and
//! plan signatures.
//!
//! Plan signatures must be stable across processes and runs — they key
//! the piecewise-linear memory model's plan-regime intervals (§5.1) —
//! so we avoid `std`'s randomly-seeded hasher.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Start a fresh hash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Continue hashing from a previously [`finish`](Self::finish)ed
    /// state (used to derive salted variants of an existing hash).
    pub fn resume(state: u64) -> Self {
        Fnv64(state)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a string with a terminator so `("ab","c")` and
    /// `("a","bc")` hash differently.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes()).write(&[0xff])
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash a whole string in one call.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(s);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fnv1a("select 1"), fnv1a("select 1"));
        assert_ne!(fnv1a("select 1"), fnv1a("select 2"));
    }

    #[test]
    fn concatenation_is_disambiguated() {
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty string is the offset basis; our write_str
        // appends a terminator so test the raw path.
        let h = Fnv64::new().finish();
        assert_eq!(h, 0xcbf2_9ce4_8422_2325);
    }
}
