#![warn(missing_docs)]

//! # vda-simdb
//!
//! A simulated relational DBMS substrate standing in for the
//! PostgreSQL 8.1.3 and DB2 v9 instances of Soror et al. The
//! virtualization design advisor treats each database system as three
//! things:
//!
//! 1. a **query optimizer cost model** parameterized by descriptive and
//!    prescriptive configuration parameters (Tables II and III of the
//!    paper) that can be driven in a *what-if* mode,
//! 2. a **tuning policy** that divides a VM's memory between buffer
//!    pool and sort/work memory, and
//! 3. an **actual execution time** observed when the workload runs.
//!
//! This crate provides all three, built from scratch:
//!
//! * [`sql`] — a lexer and recursive-descent parser for the SQL subset
//!   the TPC-H-like and TPC-C-like workloads use (select/project/join,
//!   aggregation, ordering, subqueries, DML).
//! * [`catalog`] — table, column, and index statistics.
//! * [`bind`] — name resolution and selectivity estimation, producing a
//!   [`bind::BoundQuery`] the optimizer consumes.
//! * [`plan`] / [`optimizer`] — a cost-based optimizer with access-path
//!   selection, dynamic-programming join enumeration, three join
//!   methods, memory-aware sorts/hash operators (the source of the
//!   paper's piecewise-linear memory behaviour), and plan signatures.
//! * [`engines`] — [`engines::PgSim`] (costs in sequential-page units,
//!   PostgreSQL's seven optimizer parameters) and [`engines::Db2Sim`]
//!   (costs in *timerons*, DB2's five parameters).
//! * [`exec`] — an analytic executor that charges the chosen plan
//!   against a [`vda_vmm::VmPerf`], including costs the optimizers do
//!   **not** model (result return, lock contention, update overhead,
//!   DB2's underestimated sort-spill penalty). These unmodeled costs
//!   are precisely what the paper's online refinement corrects for.

pub mod bind;
pub mod catalog;
pub mod engines;
pub mod exec;
pub mod hash;
pub mod optimizer;
pub mod plan;
pub mod sql;

pub use bind::{bind_statement, BoundQuery};
pub use catalog::{Catalog, ColumnDef, IndexDef, TableDef};
pub use engines::{
    Db2Params, Db2Sim, Engine, EngineKind, EngineParams, MemoryConfig, PgParams, PgSim,
};
pub use exec::{ExecContext, ExecOutcome, Executor};
pub use optimizer::Optimizer;
pub use plan::{CostFactors, PhysicalPlan, PlanCounters, PlanNode};

/// Errors produced anywhere in the simulated DBMS stack.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Lexical error with position and message.
    Lex(String),
    /// Syntax error with message.
    Parse(String),
    /// Name-resolution failure (unknown table/column/alias).
    Bind(String),
    /// Catalog inconsistency (e.g. index over a missing table).
    Catalog(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Lex(m) => write!(f, "lexical error: {m}"),
            DbError::Parse(m) => write!(f, "syntax error: {m}"),
            DbError::Bind(m) => write!(f, "binding error: {m}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DbError>;
