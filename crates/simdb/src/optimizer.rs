//! Cost-based query optimizer.
//!
//! A System-R-style optimizer shared by both simulated engines (they
//! differ in their [`CostFactors`], i.e. in the per-unit costs their
//! configuration parameters imply, not in the search):
//!
//! * access-path selection (sequential vs. B-tree index scan),
//! * exhaustive left-deep dynamic-programming join enumeration over
//!   hash join, sort-merge join, and index nested loops,
//! * memory-aware operators: external sorts with multi-pass merging and
//!   hash joins/aggregations that spill in batches when the build side
//!   exceeds the operator memory budget. Plan shape therefore changes
//!   at discrete memory thresholds — producing the piecewise-linear
//!   cost-vs-memory behaviour the paper's §5.1 models,
//! * subquery planning (correlated subplans re-executed per outer row,
//!   uncorrelated subplans executed once).

use crate::bind::{BoundQuery, BoundRelation, Executions, WriteOp};
use crate::catalog::{Catalog, PAGE_BYTES};
use crate::plan::{miss_ratio, CostFactors, ModifyOp, PhysicalPlan, PlanCounters, PlanNode};

/// CPU operators charged per build-side tuple of a hash join.
const HASH_BUILD_OPS: f64 = 2.0;
/// CPU operators charged per probe-side tuple of a hash join.
const HASH_PROBE_OPS: f64 = 1.5;
/// CPU operators charged per input tuple of a merge join.
const MERGE_OPS: f64 = 1.0;
/// CPU operators charged per input row of hash aggregation.
const AGG_GROUP_OPS: f64 = 1.5;
/// Fraction of a full operator evaluation charged per sort comparison
/// (comparisons are tight loops, not expression evaluations).
const SORT_CMP_FACTOR: f64 = 0.3;
/// Cap on intermediate-result cardinality to keep cross joins finite.
const MAX_ROWS: f64 = 1e15;
/// Heap-page writes per modified row, before index maintenance.
const WRITE_PAGES_PER_ROW: f64 = 0.5;
/// Additional page writes per modified row per index.
const WRITE_PAGES_PER_INDEX: f64 = 0.5;

/// The optimizer: a catalog plus the engine's current cost factors.
#[derive(Debug, Clone)]
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    factors: CostFactors,
}

/// A partially-built plan during enumeration.
#[derive(Debug, Clone)]
struct Candidate {
    node: PlanNode,
    counters: PlanCounters,
    rows: f64,
    width: f64,
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer for `catalog` with the given per-unit costs.
    pub fn new(catalog: &'a Catalog, factors: CostFactors) -> Self {
        Optimizer { catalog, factors }
    }

    /// The cost factors in effect.
    pub fn factors(&self) -> &CostFactors {
        &self.factors
    }

    /// Plan a bound query, returning the cheapest plan found.
    pub fn plan(&self, q: &BoundQuery) -> PhysicalPlan {
        let mut cand = self.plan_relational(q);

        // Attach subplans (correlated ones re-execute per driving row).
        for sub in &q.subplans {
            let subplan = self.plan(&sub.query);
            let executions = match &sub.executions {
                Executions::Once => 1.0,
                Executions::PerOuterRow { driving_rel } => q
                    .relations
                    .get(*driving_rel)
                    .map_or(1.0, BoundRelation::filtered_rows),
            };
            let mut sub_counters = subplan.counters.scaled(executions);
            // Subquery results feed the parent predicate, not the
            // client.
            sub_counters.rows_returned = 0.0;
            cand.counters.add(&sub_counters);
            cand.node = PlanNode::Subplan {
                input: Box::new(cand.node),
                plan: Box::new(subplan.root),
                executions,
            };
        }

        // DML sits on top of the scan that located the rows.
        if let Some(w) = &q.write {
            let pages =
                w.rows * (WRITE_PAGES_PER_ROW + WRITE_PAGES_PER_INDEX * w.index_count as f64);
            cand.counters.write_pages += pages;
            cand.counters.lock_requests += w.rows;
            cand.counters.rows_returned = 0.0;
            let op = match w.op {
                WriteOp::Insert => ModifyOp::Insert,
                WriteOp::Update => ModifyOp::Update,
                WriteOp::Delete => ModifyOp::Delete,
            };
            cand.node = PlanNode::Modify {
                input: if q.relations.is_empty() {
                    None
                } else {
                    Some(Box::new(cand.node))
                },
                table: w.table.clone(),
                op,
                rows: w.rows,
            };
            cand.rows = 0.0;
        } else {
            cand.counters.rows_returned = cand.rows;
        }

        let native_cost = self.factors.native_cost(&cand.counters);
        let signature = PhysicalPlan::signature_of(&cand.node);
        PhysicalPlan {
            root: cand.node,
            counters: cand.counters,
            native_cost,
            rows: cand.rows,
            signature,
        }
    }

    /// Plan the relational core: scans, joins, aggregation, ordering,
    /// limit. Subplans and DML are layered on by [`Self::plan`].
    fn plan_relational(&self, q: &BoundQuery) -> Candidate {
        let mut cand = if q.relations.is_empty() {
            // `SELECT <exprs>` without FROM (or a VALUES insert):
            // one row of pure computation.
            Candidate {
                node: PlanNode::SeqScan {
                    table: "<values>".into(),
                    rows: 1.0,
                },
                counters: PlanCounters {
                    cpu_operators: q.select_ops.max(1.0),
                    ..Default::default()
                },
                rows: 1.0,
                width: 16.0,
            }
        } else {
            self.enumerate_joins(q)
        };

        // Projection arithmetic for non-aggregate queries (aggregate
        // ops are charged by the aggregation node).
        if q.agg.is_none() {
            cand.counters.cpu_operators += q.select_ops * cand.rows;
        }

        if let Some(agg) = &q.agg {
            let groups_raw = if agg.group_cols == 0 {
                1.0
            } else {
                agg.group_ndv.min(cand.rows / 2.0).max(1.0)
            };
            cand = self.add_aggregate(cand, groups_raw, agg.ops_per_row, agg.having_sel);
        }

        if q.distinct {
            // NDV of arbitrary projections is unknown; the classic
            // guess is half the input.
            let groups = (cand.rows / 2.0).max(1.0);
            cand = self.add_aggregate(cand, groups, 1.0, 1.0);
        }

        if q.sort.is_some() {
            let (delta, passes) = self.sort_work(cand.rows, cand.width);
            cand.counters.add(&delta);
            cand.node = PlanNode::Sort {
                input: Box::new(cand.node),
                passes,
                rows: cand.rows,
            };
        }

        if let Some(limit) = q.limit {
            if limit < cand.rows {
                cand.rows = limit;
                cand.node = PlanNode::Limit {
                    input: Box::new(cand.node),
                    rows: limit,
                };
            }
        }
        cand
    }

    // ---- scans ---------------------------------------------------------

    /// Best access path for one base relation.
    fn scan(&self, rel: &BoundRelation) -> Candidate {
        let seq = self.seq_scan(rel);
        match self.index_scan(rel) {
            Some(ix) if self.cost(&ix) < self.cost(&seq) => ix,
            _ => seq,
        }
    }

    fn cost(&self, c: &Candidate) -> f64 {
        self.factors.native_cost(&c.counters)
    }

    fn seq_scan(&self, rel: &BoundRelation) -> Candidate {
        let counters = PlanCounters {
            seq_pages: rel.pages * miss_ratio(rel.pages, self.factors.buffer_pages),
            cpu_tuples: rel.rows,
            cpu_operators: rel.rows * rel.filter_ops,
            ..Default::default()
        };
        let rows = rel.filtered_rows();
        Candidate {
            node: PlanNode::SeqScan {
                table: rel.table.clone(),
                rows,
            },
            counters,
            rows,
            width: rel.projected_width,
        }
    }

    fn index_scan(&self, rel: &BoundRelation) -> Option<Candidate> {
        let filter = rel.index_filter.as_ref()?;
        let idx = self.catalog.index_on(&rel.table, &filter.column)?;
        let entries = (rel.rows * filter.sel).max(1.0);
        let miss = miss_ratio(rel.pages, self.factors.buffer_pages);
        // Index pages: descent + the fraction of leaves the predicate
        // touches; heap fetches bounded by the table size
        // (Mackert–Lohman style clamping).
        let index_pages = idx.height(rel.rows) + idx.leaf_pages(rel.rows) * filter.sel;
        let heap_pages = entries.min(rel.pages);
        let counters = PlanCounters {
            rand_pages: (index_pages + heap_pages) * miss,
            cpu_index_tuples: entries,
            cpu_tuples: entries,
            cpu_operators: entries * rel.filter_ops,
            ..Default::default()
        };
        let rows = rel.filtered_rows();
        Some(Candidate {
            node: PlanNode::IndexScan {
                table: rel.table.clone(),
                index: idx.name.clone(),
                rows,
            },
            counters,
            rows,
            width: rel.projected_width,
        })
    }

    // ---- join enumeration ----------------------------------------------

    /// Exhaustive left-deep DP over join orders and methods.
    fn enumerate_joins(&self, q: &BoundQuery) -> Candidate {
        let n = q.relations.len();
        assert!(n <= 16, "join enumeration supports at most 16 relations");
        let scans: Vec<Candidate> = q.relations.iter().map(|r| self.scan(r)).collect();
        if n == 1 {
            return scans.into_iter().next().expect("n == 1");
        }

        let full: u64 = (1u64 << n) - 1;
        let mut best: Vec<Option<Candidate>> = vec![None; (full + 1) as usize];
        for (i, s) in scans.iter().enumerate() {
            best[1usize << i] = Some(s.clone());
        }

        // Enumerate masks in increasing popcount order implicitly by
        // numeric order (any mask is larger than its strict subsets).
        for mask in 1..=full {
            let Some(left) = best[mask as usize].clone() else {
                continue;
            };
            #[allow(clippy::needless_range_loop)] // DP over relation indexes, not a slice walk
            for j in 0..n {
                let bit = 1u64 << j;
                if mask & bit != 0 {
                    continue;
                }
                // Prefer edge-connected extensions; cross joins are
                // permitted (sel = 1) so star/snowflake corners and
                // predicate-free templates still plan.
                let sel: f64 = q
                    .joins
                    .iter()
                    .filter(|e| e.connects(mask, j))
                    .map(|e| e.sel)
                    .product();
                let connected = q.joins.iter().any(|e| e.connects(mask, j));
                if !connected && self.has_connected_extension(q, mask, n) {
                    continue;
                }
                let out_rows = (left.rows * scans[j].rows * sel).clamp(1.0, MAX_ROWS);

                for cand in self.join_candidates(q, &left, j, &scans[j], out_rows) {
                    let slot = &mut best[(mask | bit) as usize];
                    let better = slot
                        .as_ref()
                        .is_none_or(|old| self.cost(&cand) < self.cost(old));
                    if better {
                        *slot = Some(cand);
                    }
                }
            }
        }

        best[full as usize]
            .clone()
            .expect("DP always reaches the full relation set")
    }

    /// Whether any relation outside `mask` is edge-connected to it.
    fn has_connected_extension(&self, q: &BoundQuery, mask: u64, n: usize) -> bool {
        (0..n).any(|j| {
            let bit = 1u64 << j;
            mask & bit == 0 && q.joins.iter().any(|e| e.connects(mask, j))
        })
    }

    /// All join methods for extending `left` with base relation `j`.
    fn join_candidates(
        &self,
        q: &BoundQuery,
        left: &Candidate,
        j: usize,
        right_scan: &Candidate,
        out_rows: f64,
    ) -> Vec<Candidate> {
        let rel = &q.relations[j];
        let width = left.width + rel.projected_width;
        let mut out = Vec::with_capacity(3);
        out.push(self.hash_join(left, right_scan, out_rows, width));
        out.push(self.merge_join(left, right_scan, out_rows, width));
        if let Some(inl) = self.index_nestloop(q, left, j, out_rows, width) {
            out.push(inl);
        }
        out
    }

    fn hash_join(
        &self,
        left: &Candidate,
        right: &Candidate,
        out_rows: f64,
        width: f64,
    ) -> Candidate {
        // Build on the smaller input by bytes.
        let left_bytes = left.rows * left.width;
        let right_bytes = right.rows * right.width;
        let (build, probe) = if right_bytes <= left_bytes {
            (right, left)
        } else {
            (left, right)
        };
        let build_pages = (build.rows * build.width / PAGE_BYTES).max(1.0);
        let probe_pages = (probe.rows * probe.width / PAGE_BYTES).max(1.0);
        let mem = self.factors.work_mem_pages.max(1.0);

        let mut counters = left.counters;
        counters.add(&right.counters);
        counters.cpu_operators += build.rows * HASH_BUILD_OPS + probe.rows * HASH_PROBE_OPS;
        counters.cpu_tuples += out_rows;

        let batches = if build_pages <= mem {
            1
        } else {
            let ratio = (build_pages / mem).ceil();
            // Grace hash partitioning: power-of-two batch counts.
            (ratio as u32).next_power_of_two().max(2)
        };
        if batches > 1 {
            // Both inputs are written out and re-read once.
            counters.spill_pages += 2.0 * (build_pages + probe_pages);
        }

        Candidate {
            node: PlanNode::HashJoin {
                build: Box::new(build.node.clone()),
                probe: Box::new(probe.node.clone()),
                batches,
                rows: out_rows,
            },
            counters,
            rows: out_rows,
            width,
        }
    }

    fn merge_join(
        &self,
        left: &Candidate,
        right: &Candidate,
        out_rows: f64,
        width: f64,
    ) -> Candidate {
        let mut counters = left.counters;
        counters.add(&right.counters);

        let (lsort, lpasses) = self.sort_work(left.rows, left.width);
        let (rsort, rpasses) = self.sort_work(right.rows, right.width);
        counters.add(&lsort);
        counters.add(&rsort);
        counters.cpu_operators += (left.rows + right.rows) * MERGE_OPS;
        counters.cpu_tuples += out_rows;

        let lnode = PlanNode::Sort {
            input: Box::new(left.node.clone()),
            passes: lpasses,
            rows: left.rows,
        };
        let rnode = PlanNode::Sort {
            input: Box::new(right.node.clone()),
            passes: rpasses,
            rows: right.rows,
        };
        Candidate {
            node: PlanNode::MergeJoin {
                left: Box::new(lnode),
                right: Box::new(rnode),
                rows: out_rows,
            },
            counters,
            rows: out_rows,
            width,
        }
    }

    /// Index nested loops: drive from `left`, probe an index on
    /// relation `j`'s join column. Requires an equi-join edge whose
    /// `j` side is indexed.
    fn index_nestloop(
        &self,
        q: &BoundQuery,
        left: &Candidate,
        j: usize,
        out_rows: f64,
        width: f64,
    ) -> Option<Candidate> {
        let rel = &q.relations[j];
        // Find an equi-edge binding j to the current mask with an index
        // on j's column. (`connects` was already checked by the caller
        // via selectivity; here any eq edge touching j works because
        // left-deep DP only extends connected sets.)
        let (column, ndv) = q
            .joins
            .iter()
            .filter(|e| e.a == j || e.b == j)
            .find_map(|e| e.column_for(j))?;
        let idx = self.catalog.index_on(&rel.table, column)?;

        let entries_per_probe = (rel.rows / ndv.max(1.0)).max(1.0);
        let miss = miss_ratio(rel.pages, self.factors.buffer_pages);
        // Internal B-tree pages are hot after the first probe; charge
        // one leaf page plus the heap fetches per probe.
        let per_probe = PlanCounters {
            rand_pages: (1.0 + entries_per_probe.min(rel.pages)) * miss,
            cpu_index_tuples: idx.height(rel.rows) + entries_per_probe,
            cpu_tuples: entries_per_probe,
            cpu_operators: entries_per_probe * rel.filter_ops,
            ..Default::default()
        };

        let mut counters = left.counters;
        counters.add(&per_probe.scaled(left.rows));
        counters.cpu_tuples += out_rows;

        let inner = PlanNode::IndexScan {
            table: rel.table.clone(),
            index: idx.name.clone(),
            rows: entries_per_probe * rel.filter_sel,
        };
        Some(Candidate {
            node: PlanNode::NestLoop {
                outer: Box::new(left.node.clone()),
                inner: Box::new(inner),
                indexed: true,
                rows: out_rows,
            },
            counters,
            rows: out_rows,
            width,
        })
    }

    // ---- memory-sensitive operators -------------------------------------

    /// Counters and pass count for sorting `rows` of `width` bytes
    /// under the operator memory budget.
    fn sort_work(&self, rows: f64, width: f64) -> (PlanCounters, u32) {
        let rows = rows.max(1.0);
        let mut counters = PlanCounters {
            cpu_operators: rows * rows.log2().max(1.0) * SORT_CMP_FACTOR,
            ..Default::default()
        };
        let pages = (rows * width / PAGE_BYTES).max(1.0);
        let mem = self.factors.work_mem_pages.max(1.0);
        if pages <= mem {
            return (counters, 0);
        }
        let runs = (pages / mem).ceil();
        let fanout = (mem - 1.0).max(2.0);
        let passes = (runs.ln() / fanout.ln()).ceil().max(1.0) as u32;
        counters.spill_pages = 2.0 * pages * passes as f64;
        (counters, passes)
    }

    /// Add an aggregation over `cand`, choosing hash aggregation when
    /// the group table fits the operator memory budget and falling
    /// back to sort-based aggregation otherwise (a discrete plan
    /// change, as in PostgreSQL 8.x).
    fn add_aggregate(
        &self,
        mut cand: Candidate,
        groups: f64,
        ops_per_row: f64,
        having_sel: f64,
    ) -> Candidate {
        let input_rows = cand.rows;
        cand.counters.cpu_operators += input_rows * ops_per_row;

        let hash_bytes = groups * cand.width;
        let fits = hash_bytes <= self.factors.work_mem_bytes();
        if fits {
            cand.counters.cpu_operators += input_rows * AGG_GROUP_OPS;
            cand.node = PlanNode::HashAgg {
                input: Box::new(cand.node),
                groups,
            };
        } else {
            let (sort, passes) = self.sort_work(input_rows, cand.width);
            cand.counters.add(&sort);
            cand.counters.cpu_operators += input_rows;
            let sorted = PlanNode::Sort {
                input: Box::new(cand.node),
                passes,
                rows: input_rows,
            };
            cand.node = PlanNode::SortAgg {
                input: Box::new(sorted),
                groups,
            };
        }
        cand.rows = (groups * having_sel).max(1.0);
        // Aggregated output rows are narrow.
        cand.width = 16.0_f64.max(cand.width * 0.25);
        cand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_statement;
    use crate::catalog::{table, Catalog, IndexDef};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(table(
            "orders",
            1_500_000.0,
            120.0,
            &[
                ("o_orderkey", 1_500_000.0, 8.0),
                ("o_custkey", 100_000.0, 8.0),
                ("o_totalprice", 1_000_000.0, 8.0),
            ],
        ));
        c.add_table(table(
            "lineitem",
            6_000_000.0,
            140.0,
            &[
                ("l_orderkey", 1_500_000.0, 8.0),
                ("l_partkey", 200_000.0, 8.0),
                ("l_quantity", 50.0, 8.0),
            ],
        ));
        c.add_table(table(
            "customer",
            150_000.0,
            180.0,
            &[("c_custkey", 150_000.0, 8.0), ("c_name", 150_000.0, 24.0)],
        ));
        for (name, tbl, col) in [
            ("orders_pk", "orders", "o_orderkey"),
            ("lineitem_ok", "lineitem", "l_orderkey"),
            ("customer_pk", "customer", "c_custkey"),
        ] {
            c.add_index(IndexDef {
                name: name.into(),
                table: tbl.into(),
                column: col.into(),
            })
            .unwrap();
        }
        c
    }

    fn factors(work_mem_pages: f64, buffer_pages: f64) -> CostFactors {
        CostFactors {
            seq_page: 1.0,
            rand_page: 4.0,
            cpu_tuple: 0.01,
            cpu_operator: 0.0025,
            cpu_index_tuple: 0.005,
            work_mem_pages,
            buffer_pages,
        }
    }

    fn plan(sql: &str, f: CostFactors) -> PhysicalPlan {
        let c = cat();
        let q = bind_statement(sql, &c).unwrap();
        Optimizer::new(&c, f).plan(&q)
    }

    #[test]
    fn selective_predicate_uses_index() {
        let p = plan(
            "SELECT * FROM orders WHERE o_orderkey = 1",
            factors(640.0, 1000.0),
        );
        assert!(
            matches!(p.root, PlanNode::IndexScan { .. }),
            "{}",
            p.explain()
        );
        assert!(p.counters.rand_pages < 10.0);
    }

    #[test]
    fn unselective_predicate_uses_seqscan() {
        let p = plan(
            "SELECT * FROM lineitem WHERE l_quantity < 45 /*+ sel 0.9 */",
            factors(640.0, 1000.0),
        );
        assert!(
            matches!(p.root, PlanNode::SeqScan { .. }),
            "{}",
            p.explain()
        );
    }

    #[test]
    fn join_produces_reasonable_method() {
        let p = plan(
            "SELECT o.o_totalprice FROM orders o, lineitem l \
             WHERE o.o_orderkey = l.l_orderkey AND o.o_custkey = 17",
            factors(640.0, 1000.0),
        );
        // A 15-row outer driving an indexed inner should win.
        fn has_inl(n: &PlanNode) -> bool {
            match n {
                PlanNode::NestLoop { indexed: true, .. } => true,
                PlanNode::NestLoop { outer, inner, .. } => has_inl(outer) || has_inl(inner),
                PlanNode::HashJoin { build, probe, .. } => has_inl(build) || has_inl(probe),
                PlanNode::MergeJoin { left, right, .. } => has_inl(left) || has_inl(right),
                PlanNode::Sort { input, .. }
                | PlanNode::HashAgg { input, .. }
                | PlanNode::SortAgg { input, .. }
                | PlanNode::Limit { input, .. } => has_inl(input),
                _ => false,
            }
        }
        assert!(has_inl(&p.root), "{}", p.explain());
    }

    #[test]
    fn three_way_join_plans() {
        let p = plan(
            "SELECT c.c_name FROM customer c, orders o, lineitem l \
             WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey",
            factors(640.0, 1000.0),
        );
        assert!(p.native_cost > 0.0);
        assert!(p.rows >= 1.0);
    }

    #[test]
    fn more_memory_never_increases_cost() {
        let sql = "SELECT l_partkey, count(*) FROM lineitem GROUP BY l_partkey \
                   ORDER BY l_partkey";
        let costs: Vec<f64> = [64.0, 256.0, 1024.0, 4096.0, 65536.0]
            .iter()
            .map(|&m| plan(sql, factors(m, 1000.0)).native_cost)
            .collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "cost increased with memory: {costs:?}");
        }
    }

    #[test]
    fn memory_threshold_changes_plan_signature() {
        // Group table of ~200k groups × width; small work_mem forces
        // sort-based aggregation, large allows hash aggregation.
        let sql = "SELECT l_partkey, count(*) FROM lineitem GROUP BY l_partkey";
        let small = plan(sql, factors(32.0, 1000.0));
        let large = plan(sql, factors(65536.0, 1000.0));
        assert_ne!(small.signature, large.signature);
        fn top_is_sortagg(n: &PlanNode) -> bool {
            matches!(n, PlanNode::SortAgg { .. })
        }
        assert!(top_is_sortagg(&small.root), "{}", small.explain());
        assert!(
            matches!(large.root, PlanNode::HashAgg { .. }),
            "{}",
            large.explain()
        );
    }

    #[test]
    fn buffer_pool_reduces_io() {
        let sql = "SELECT count(*) FROM lineitem";
        let cold = plan(sql, factors(640.0, 100.0));
        let warm = plan(sql, factors(640.0, 200_000.0));
        assert!(warm.counters.seq_pages < cold.counters.seq_pages);
        assert!(warm.native_cost < cold.native_cost);
    }

    #[test]
    fn correlated_subquery_scales_with_driving_rows() {
        let narrow = plan(
            "SELECT * FROM orders o WHERE o_custkey = 1 AND o_totalprice > \
             (SELECT avg(l_quantity) FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
            factors(640.0, 1000.0),
        );
        let wide = plan(
            "SELECT * FROM orders o WHERE o_totalprice > \
             (SELECT avg(l_quantity) FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
            factors(640.0, 1000.0),
        );
        assert!(wide.native_cost > narrow.native_cost * 10.0);
    }

    #[test]
    fn update_plan_carries_write_counters() {
        let p = plan(
            "UPDATE orders SET o_totalprice = 0 WHERE o_orderkey = 3",
            factors(640.0, 1000.0),
        );
        assert!(matches!(
            p.root,
            PlanNode::Modify {
                op: ModifyOp::Update,
                ..
            }
        ));
        assert!(p.counters.write_pages > 0.0);
        assert!(p.counters.lock_requests >= 1.0);
        assert_eq!(p.counters.rows_returned, 0.0);
    }

    #[test]
    fn insert_plans_without_scan() {
        let p = plan(
            "INSERT INTO orders VALUES (1, 2, 3)",
            factors(640.0, 1000.0),
        );
        match &p.root {
            PlanNode::Modify {
                input,
                op: ModifyOp::Insert,
                ..
            } => assert!(input.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn limit_caps_returned_rows() {
        let p = plan("SELECT * FROM lineitem LIMIT 10", factors(640.0, 1000.0));
        assert_eq!(p.counters.rows_returned, 10.0);
    }

    #[test]
    fn rows_returned_not_in_estimate() {
        // Identical scans, wildly different result sizes: native cost
        // must not see the difference in returned rows.
        let all = plan("SELECT * FROM lineitem", factors(640.0, 1000.0));
        let one = plan("SELECT count(*) FROM lineitem", factors(640.0, 1000.0));
        assert!(all.counters.rows_returned > 1e6);
        assert!((one.counters.rows_returned - 1.0).abs() < 1e-9);
        // count(*) actually costs *more* (aggregation work), proving
        // the returned rows are free in the model.
        assert!(one.native_cost >= all.native_cost);
    }

    #[test]
    fn select_without_from_plans() {
        let p = plan("SELECT 1 + 2", factors(640.0, 1000.0));
        assert_eq!(p.rows, 1.0);
        assert!(p.native_cost >= 0.0);
    }

    #[test]
    fn cross_join_is_planned_when_no_edges() {
        let p = plan(
            "SELECT * FROM customer c, orders o LIMIT 5",
            factors(640.0, 1000.0),
        );
        assert!(p.rows <= 5.0);
        assert!(p.native_cost > 0.0);
    }

    #[test]
    fn plans_are_deterministic() {
        let sql = "SELECT c.c_name, sum(l.l_quantity) FROM customer c, orders o, lineitem l \
                   WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
                   GROUP BY c.c_name ORDER BY c.c_name";
        let a = plan(sql, factors(640.0, 1000.0));
        let b = plan(sql, factors(640.0, 1000.0));
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.native_cost, b.native_cost);
    }
}
