//! Physical plans, work counters, and cost factors.
//!
//! The simulated optimizers express *all* work a plan performs as a
//! [`PlanCounters`] vector (pages read sequentially/randomly, tuples
//! and operators processed, pages spilled by memory-constrained
//! operators, …). An engine's cost model is then a dot product of the
//! counters with per-unit [`CostFactors`] derived from its optimizer
//! configuration parameters — which makes the paper's central
//! calibration assumption (§4.3: cost estimates are linear functions of
//! the descriptive parameters, for a fixed plan) hold *exactly*, the
//! way it holds approximately in PostgreSQL and DB2.
//!
//! Two counters are deliberately **excluded** from estimated cost:
//! `rows_returned` (result transfer to the client — "typically not
//! modeled by query optimizers", §4.3) and `lock_requests` (contention
//! and update costs that make optimizers underestimate OLTP CPU needs,
//! §7.8). The executor charges them; the optimizer does not. Online
//! refinement exists to close exactly this gap.

use crate::catalog::PAGE_BYTES;
use crate::hash::Fnv64;
use serde::{Deserialize, Serialize};

/// Extra sequential-page cost factor for dirtied pages (write + WAL).
pub const WRITE_PAGE_FACTOR: f64 = 2.0;

/// Fraction of a table that can at most become cache-resident in the
/// buffer model (the tail always misses: checkpoints, eviction churn).
pub const MAX_RESIDENT_FRACTION: f64 = 0.98;

/// Steady-state miss ratio for a scan of `pages` pages through a cache
/// of `buffer_pages` pages: resident fraction `min(0.98, B/P)`, so the
/// miss ratio is piecewise-linear in the memory grant — one source of
/// the paper's piecewise memory behaviour.
pub fn miss_ratio(pages: f64, buffer_pages: f64) -> f64 {
    let resident = (buffer_pages / pages.max(1.0)).min(MAX_RESIDENT_FRACTION);
    (1.0 - resident).max(1.0 - MAX_RESIDENT_FRACTION)
}

/// Physical work performed by a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PlanCounters {
    /// Pages read sequentially (miss-adjusted).
    pub seq_pages: f64,
    /// Pages read at random offsets (miss-adjusted).
    pub rand_pages: f64,
    /// Pages written **and re-read** by spilling operators (external
    /// sort runs, hash-join batches).
    pub spill_pages: f64,
    /// Tuples flowing through operators.
    pub cpu_tuples: f64,
    /// Predicate/aggregate/hash operator evaluations.
    pub cpu_operators: f64,
    /// Index entries examined.
    pub cpu_index_tuples: f64,
    /// Rows delivered to the client (NOT costed by optimizers).
    pub rows_returned: f64,
    /// Pages dirtied by DML.
    pub write_pages: f64,
    /// Row locks taken by DML (NOT costed by optimizers).
    pub lock_requests: f64,
}

impl PlanCounters {
    /// Component-wise sum.
    pub fn add(&mut self, other: &PlanCounters) {
        self.seq_pages += other.seq_pages;
        self.rand_pages += other.rand_pages;
        self.spill_pages += other.spill_pages;
        self.cpu_tuples += other.cpu_tuples;
        self.cpu_operators += other.cpu_operators;
        self.cpu_index_tuples += other.cpu_index_tuples;
        self.rows_returned += other.rows_returned;
        self.write_pages += other.write_pages;
        self.lock_requests += other.lock_requests;
    }

    /// Component-wise scaling (used for re-executed subplans).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> PlanCounters {
        PlanCounters {
            seq_pages: self.seq_pages * factor,
            rand_pages: self.rand_pages * factor,
            spill_pages: self.spill_pages * factor,
            cpu_tuples: self.cpu_tuples * factor,
            cpu_operators: self.cpu_operators * factor,
            cpu_index_tuples: self.cpu_index_tuples * factor,
            rows_returned: self.rows_returned * factor,
            write_pages: self.write_pages * factor,
            lock_requests: self.lock_requests * factor,
        }
    }
}

/// Per-unit costs in an engine's native units, derived from its
/// optimizer configuration parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostFactors {
    /// Cost of one sequential page read.
    pub seq_page: f64,
    /// Cost of one random page read.
    pub rand_page: f64,
    /// Cost of processing one tuple.
    pub cpu_tuple: f64,
    /// Cost of one operator evaluation.
    pub cpu_operator: f64,
    /// Cost of examining one index entry.
    pub cpu_index_tuple: f64,
    /// Memory available per sort/hash operator, in pages.
    pub work_mem_pages: f64,
    /// Buffer pool + OS cache available for scans, in pages.
    pub buffer_pages: f64,
}

impl CostFactors {
    /// Estimated cost of `counters` in native units. `rows_returned`
    /// and `lock_requests` are deliberately not charged (see module
    /// docs).
    pub fn native_cost(&self, c: &PlanCounters) -> f64 {
        self.seq_page * (c.seq_pages + c.spill_pages + c.write_pages * WRITE_PAGE_FACTOR)
            + self.rand_page * c.rand_pages
            + self.cpu_tuple * c.cpu_tuples
            + self.cpu_operator * c.cpu_operators
            + self.cpu_index_tuple * c.cpu_index_tuples
    }

    /// Work-memory budget in bytes.
    pub fn work_mem_bytes(&self) -> f64 {
        self.work_mem_pages * PAGE_BYTES
    }
}

/// Kind of DML operation on a [`PlanNode::Modify`] node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModifyOp {
    /// Row insertion.
    Insert,
    /// In-place update.
    Update,
    /// Row deletion.
    Delete,
}

/// A physical plan operator tree (structure only; the work is carried
/// separately as [`PlanCounters`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanNode {
    /// Full-table scan.
    SeqScan {
        /// Scanned table.
        table: String,
        /// Estimated output rows.
        rows: f64,
    },
    /// B-tree index scan with heap fetches.
    IndexScan {
        /// Scanned table.
        table: String,
        /// Index used.
        index: String,
        /// Estimated output rows.
        rows: f64,
    },
    /// Nested-loop join; `indexed` marks an index-driven inner.
    NestLoop {
        /// Outer (driving) input.
        outer: Box<PlanNode>,
        /// Inner input.
        inner: Box<PlanNode>,
        /// Whether the inner side is an index probe.
        indexed: bool,
        /// Estimated output rows.
        rows: f64,
    },
    /// Hash join; `batches > 1` means the build side spilled.
    HashJoin {
        /// Build input.
        build: Box<PlanNode>,
        /// Probe input.
        probe: Box<PlanNode>,
        /// Number of hash batches (1 = in-memory).
        batches: u32,
        /// Estimated output rows.
        rows: f64,
    },
    /// Sort-merge join (children include required sorts).
    MergeJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Estimated output rows.
        rows: f64,
    },
    /// Sort; `passes > 0` means an external merge sort.
    Sort {
        /// Input.
        input: Box<PlanNode>,
        /// External merge passes (0 = in-memory).
        passes: u32,
        /// Estimated output rows.
        rows: f64,
    },
    /// Hash aggregation.
    HashAgg {
        /// Input.
        input: Box<PlanNode>,
        /// Estimated groups.
        groups: f64,
    },
    /// Aggregation over sorted input.
    SortAgg {
        /// Input (a Sort or naturally ordered plan).
        input: Box<PlanNode>,
        /// Estimated groups.
        groups: f64,
    },
    /// A subquery attached to a main plan, executed `executions` times.
    Subplan {
        /// The main plan the subquery serves.
        input: Box<PlanNode>,
        /// Subquery plan.
        plan: Box<PlanNode>,
        /// Execution count.
        executions: f64,
    },
    /// Row limit.
    Limit {
        /// Input.
        input: Box<PlanNode>,
        /// Emitted rows.
        rows: f64,
    },
    /// DML application.
    Modify {
        /// Source of rows to modify (None for VALUES inserts).
        input: Option<Box<PlanNode>>,
        /// Target table.
        table: String,
        /// Operation.
        op: ModifyOp,
        /// Modified rows.
        rows: f64,
    },
}

impl PlanNode {
    /// Fold the node's *structure* into a signature hasher. Row
    /// estimates are excluded: a signature identifies a plan *shape*
    /// (operators, methods, spill regimes), which is what defines the
    /// piecewise memory-model intervals of §5.1.
    fn hash_into(&self, h: &mut Fnv64) {
        match self {
            PlanNode::SeqScan { table, .. } => {
                h.write_u64(1).write_str(table);
            }
            PlanNode::IndexScan { table, index, .. } => {
                h.write_u64(2).write_str(table).write_str(index);
            }
            PlanNode::NestLoop {
                outer,
                inner,
                indexed,
                ..
            } => {
                h.write_u64(3).write_u64(*indexed as u64);
                outer.hash_into(h);
                inner.hash_into(h);
            }
            PlanNode::HashJoin {
                build,
                probe,
                batches,
                ..
            } => {
                h.write_u64(4).write_u64(u64::from(*batches > 1));
                build.hash_into(h);
                probe.hash_into(h);
            }
            PlanNode::MergeJoin { left, right, .. } => {
                h.write_u64(5);
                left.hash_into(h);
                right.hash_into(h);
            }
            PlanNode::Sort { input, passes, .. } => {
                h.write_u64(6).write_u64(u64::from(*passes > 0));
                input.hash_into(h);
            }
            PlanNode::HashAgg { input, .. } => {
                h.write_u64(7);
                input.hash_into(h);
            }
            PlanNode::SortAgg { input, .. } => {
                h.write_u64(8);
                input.hash_into(h);
            }
            PlanNode::Subplan { input, plan, .. } => {
                h.write_u64(9);
                input.hash_into(h);
                plan.hash_into(h);
            }
            PlanNode::Limit { input, .. } => {
                h.write_u64(10);
                input.hash_into(h);
            }
            PlanNode::Modify {
                input, table, op, ..
            } => {
                h.write_u64(11).write_u64(*op as u64).write_str(table);
                if let Some(i) = input {
                    i.hash_into(h);
                }
            }
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::SeqScan { table, rows } => {
                let _ = writeln!(out, "{pad}SeqScan on {table} (rows={rows:.0})");
            }
            PlanNode::IndexScan { table, index, rows } => {
                let _ = writeln!(
                    out,
                    "{pad}IndexScan on {table} using {index} (rows={rows:.0})"
                );
            }
            PlanNode::NestLoop {
                outer,
                inner,
                indexed,
                rows,
            } => {
                let kind = if *indexed {
                    "IndexNestLoop"
                } else {
                    "NestLoop"
                };
                let _ = writeln!(out, "{pad}{kind} (rows={rows:.0})");
                outer.explain_into(out, depth + 1);
                inner.explain_into(out, depth + 1);
            }
            PlanNode::HashJoin {
                build,
                probe,
                batches,
                rows,
            } => {
                let _ = writeln!(out, "{pad}HashJoin (batches={batches}, rows={rows:.0})");
                build.explain_into(out, depth + 1);
                probe.explain_into(out, depth + 1);
            }
            PlanNode::MergeJoin { left, right, rows } => {
                let _ = writeln!(out, "{pad}MergeJoin (rows={rows:.0})");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PlanNode::Sort {
                input,
                passes,
                rows,
            } => {
                let _ = writeln!(out, "{pad}Sort (passes={passes}, rows={rows:.0})");
                input.explain_into(out, depth + 1);
            }
            PlanNode::HashAgg { input, groups } => {
                let _ = writeln!(out, "{pad}HashAgg (groups={groups:.0})");
                input.explain_into(out, depth + 1);
            }
            PlanNode::SortAgg { input, groups } => {
                let _ = writeln!(out, "{pad}SortAgg (groups={groups:.0})");
                input.explain_into(out, depth + 1);
            }
            PlanNode::Subplan {
                input,
                plan,
                executions,
            } => {
                let _ = writeln!(out, "{pad}Subplan (executions={executions:.0})");
                input.explain_into(out, depth + 1);
                plan.explain_into(out, depth + 1);
            }
            PlanNode::Limit { input, rows } => {
                let _ = writeln!(out, "{pad}Limit (rows={rows:.0})");
                input.explain_into(out, depth + 1);
            }
            PlanNode::Modify {
                input,
                table,
                op,
                rows,
            } => {
                let _ = writeln!(out, "{pad}Modify {op:?} {table} (rows={rows:.0})");
                if let Some(i) = input {
                    i.explain_into(out, depth + 1);
                }
            }
        }
    }
}

/// A fully-costed physical plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    /// Operator tree.
    pub root: PlanNode,
    /// Aggregated work counters (subplans included).
    pub counters: PlanCounters,
    /// Estimated cost in the engine's native units.
    pub native_cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Structural signature (plan regime identity for the piecewise
    /// memory model).
    pub signature: u64,
}

impl PhysicalPlan {
    /// Compute the structural signature of `root`.
    pub fn signature_of(root: &PlanNode) -> u64 {
        let mut h = Fnv64::new();
        root.hash_into(&mut h);
        h.finish()
    }

    /// Human-readable plan tree (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.root.explain_into(&mut out, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_bounds_and_monotonicity() {
        assert!((miss_ratio(100.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((miss_ratio(100.0, 1000.0) - 0.02).abs() < 1e-12);
        let m1 = miss_ratio(100.0, 10.0);
        let m2 = miss_ratio(100.0, 50.0);
        assert!(m2 < m1);
        assert!((m1 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn native_cost_excludes_unmodeled_counters() {
        let f = CostFactors {
            seq_page: 1.0,
            rand_page: 4.0,
            cpu_tuple: 0.01,
            cpu_operator: 0.0025,
            cpu_index_tuple: 0.005,
            work_mem_pages: 100.0,
            buffer_pages: 1000.0,
        };
        let mut c = PlanCounters {
            rows_returned: 1e9,
            lock_requests: 1e9,
            ..Default::default()
        };
        assert_eq!(f.native_cost(&c), 0.0);
        c.seq_pages = 10.0;
        assert!((f.native_cost(&c) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn write_pages_cost_more_than_reads() {
        let f = CostFactors {
            seq_page: 1.0,
            rand_page: 4.0,
            cpu_tuple: 0.0,
            cpu_operator: 0.0,
            cpu_index_tuple: 0.0,
            work_mem_pages: 100.0,
            buffer_pages: 0.0,
        };
        let w = PlanCounters {
            write_pages: 5.0,
            ..Default::default()
        };
        assert!((f.native_cost(&w) - 5.0 * WRITE_PAGE_FACTOR).abs() < 1e-12);
    }

    #[test]
    fn counters_add_and_scale() {
        let mut a = PlanCounters {
            seq_pages: 1.0,
            cpu_tuples: 10.0,
            ..Default::default()
        };
        let b = PlanCounters {
            seq_pages: 2.0,
            rand_pages: 3.0,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.seq_pages, 3.0);
        assert_eq!(a.rand_pages, 3.0);
        let s = a.scaled(2.0);
        assert_eq!(s.seq_pages, 6.0);
        assert_eq!(s.cpu_tuples, 20.0);
    }

    #[test]
    fn signature_distinguishes_structure_not_rows() {
        let a = PlanNode::SeqScan {
            table: "t".into(),
            rows: 100.0,
        };
        let b = PlanNode::SeqScan {
            table: "t".into(),
            rows: 9999.0,
        };
        assert_eq!(
            PhysicalPlan::signature_of(&a),
            PhysicalPlan::signature_of(&b)
        );
        let c = PlanNode::IndexScan {
            table: "t".into(),
            index: "i".into(),
            rows: 100.0,
        };
        assert_ne!(
            PhysicalPlan::signature_of(&a),
            PhysicalPlan::signature_of(&c)
        );
    }

    #[test]
    fn signature_distinguishes_spill_regimes() {
        let mk = |batches| PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan {
                table: "a".into(),
                rows: 1.0,
            }),
            probe: Box::new(PlanNode::SeqScan {
                table: "b".into(),
                rows: 1.0,
            }),
            batches,
            rows: 1.0,
        };
        assert_ne!(
            PhysicalPlan::signature_of(&mk(1)),
            PhysicalPlan::signature_of(&mk(4))
        );
        // 4 and 8 batches are the same regime (spilled).
        assert_eq!(
            PhysicalPlan::signature_of(&mk(4)),
            PhysicalPlan::signature_of(&mk(8))
        );
    }

    #[test]
    fn explain_renders_tree() {
        let plan = PhysicalPlan {
            root: PlanNode::Sort {
                input: Box::new(PlanNode::SeqScan {
                    table: "t".into(),
                    rows: 10.0,
                }),
                passes: 0,
                rows: 10.0,
            },
            counters: PlanCounters::default(),
            native_cost: 0.0,
            rows: 10.0,
            signature: 0,
        };
        let text = plan.explain();
        assert!(text.contains("Sort"));
        assert!(text.contains("  SeqScan on t"));
    }
}
