//! Abstract syntax tree for the SQL subset.

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …`
    Select(SelectStmt),
    /// `INSERT INTO … VALUES …`
    Insert(InsertStmt),
    /// `UPDATE … SET … [WHERE …]`
    Update(UpdateStmt),
    /// `DELETE FROM … [WHERE …]`
    Delete(DeleteStmt),
}

/// A `SELECT` statement (also used for subqueries).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Base relations; `JOIN … ON` is folded into `from` + `where_clause`.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` columns.
    pub group_by: Vec<ColRef>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` columns with descending flags.
    pub order_by: Vec<(ColRef, bool)>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// A base-table reference with its effective alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name (lower-cased).
    pub table: String,
    /// Alias; defaults to the table name.
    pub alias: String,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    /// Qualifier (table name or alias), if written.
    pub qualifier: Option<String>,
    /// Column name (lower-cased).
    pub column: String,
}

/// Binary operators (comparisons and arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Whether this operator is a comparison (predicate-forming).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Standard aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(x)` / `COUNT(*)`
    Count,
    /// `SUM(x)`
    Sum,
    /// `AVG(x)`
    Avg,
    /// `MIN(x)`
    Min,
    /// `MAX(x)`
    Max,
}

/// Expression tree used for projections and predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColRef),
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Binary operation; `hint_sel` carries a `/*+ sel p */` placed
    /// after a comparison.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Selectivity hint for comparisons.
        hint_sel: Option<f64>,
    },
    /// Conjunction of two or more predicates.
    And(Vec<Expr>),
    /// Disjunction of two or more predicates.
    Or(Vec<Expr>),
    /// Negated predicate.
    Not(Box<Expr>),
    /// `x BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        lo: Box<Expr>,
        /// Upper bound.
        hi: Box<Expr>,
        /// Selectivity hint.
        hint_sel: Option<f64>,
    },
    /// `x [NOT] LIKE 'pattern'`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
        /// `NOT LIKE`?
        negated: bool,
        /// Selectivity hint.
        hint_sel: Option<f64>,
    },
    /// `x [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Literal list.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
        /// Selectivity hint.
        hint_sel: Option<f64>,
    },
    /// `x [NOT] IN (SELECT …)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery.
        query: Box<SelectStmt>,
        /// `NOT IN`?
        negated: bool,
        /// Selectivity hint.
        hint_sel: Option<f64>,
    },
    /// `[NOT] EXISTS (SELECT …)`.
    Exists {
        /// The subquery.
        query: Box<SelectStmt>,
        /// `NOT EXISTS`?
        negated: bool,
        /// Selectivity hint.
        hint_sel: Option<f64>,
    },
    /// A scalar subquery `(SELECT …)` used as a value.
    ScalarSubquery(Box<SelectStmt>),
    /// Aggregate call.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (`None` for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
    /// Uninterpreted scalar function call (`substring`, `extract`, …):
    /// costed as one operator per argument, never filters rows.
    Func {
        /// Function name (lower-cased).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Walk the expression tree, applying `f` to every node.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.visit(f);
                }
            }
            Expr::Not(e) => e.visit(f),
            Expr::Between { expr, lo, hi, .. } => {
                expr.visit(f);
                lo.visit(f);
                hi.visit(f);
            }
            Expr::Like { expr, .. } => expr.visit(f),
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::Agg { arg: Some(a), .. } => a.visit(f),
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Whether the expression contains an aggregate call (does not
    /// descend into subqueries, matching SQL scoping).
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Agg { .. }) {
                found = true;
            }
        });
        found
    }
}

/// `INSERT INTO table [(cols)] VALUES (…), (…), …`
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Explicit column list, if given.
    pub columns: Vec<String>,
    /// One expression row per `VALUES` tuple.
    pub rows: Vec<Vec<Expr>>,
}

/// `UPDATE table SET col = expr, … [WHERE …]`
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// Assignments.
    pub set: Vec<(String, Expr)>,
    /// Row filter.
    pub where_clause: Option<Expr>,
}

/// `DELETE FROM table [WHERE …]`
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Row filter.
    pub where_clause: Option<Expr>,
}
