//! SQL front-end for the simulated engines.
//!
//! The workloads in the paper are "sets of SQL statements (possibly
//! with a frequency of occurrence for each statement)" (§3). This
//! module provides the subset of SQL those workloads need:
//!
//! * `SELECT [DISTINCT] items FROM t1 [alias], t2 … | JOIN … ON …`
//!   with `WHERE` conjunctions/disjunctions, `GROUP BY`, `HAVING`,
//!   `ORDER BY`, `LIMIT`;
//! * comparison, `BETWEEN`, `LIKE`, `IN (list)`, `IN (subquery)`,
//!   `EXISTS (subquery)`, scalar subqueries, and the five standard
//!   aggregates;
//! * `INSERT … VALUES`, `UPDATE … SET … WHERE`, `DELETE FROM … WHERE`
//!   for the OLTP (TPC-C-like) transactions;
//! * optimizer hints `/*+ sel 0.05 */` attached to a predicate, used
//!   by workload templates to pin a selectivity where the classic
//!   System-R heuristics would be too coarse.
//!
//! Grammar and semantics are deliberately those of a 2008-era system:
//! names are case-insensitive, statistics are coarse, and estimation
//! uses the textbook magic constants.

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{
    AggFunc, BinOp, ColRef, DeleteStmt, Expr, InsertStmt, SelectItem, SelectStmt, Statement,
    TableRef, UpdateStmt,
};
pub use parser::parse_statement;
pub use token::{tokenize, Sym, Token};
