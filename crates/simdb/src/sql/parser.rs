//! Recursive-descent parser for the SQL subset.

use super::ast::*;
use super::token::{tokenize, Sym, Token};
use crate::{DbError, Result};

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semi); // optional terminator
    if !p.at_end() {
        return Err(DbError::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(w)) if w == kw)
    }

    /// Consume the keyword if present; return whether it was consumed.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected keyword {kw:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Sym) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(w)) => Ok(w),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_number(&mut self) -> Result<f64> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(DbError::Parse(format!("expected number, found {other:?}"))),
        }
    }

    /// If the next token is a hint comment, parse `sel <float>` out of
    /// it and return the selectivity.
    fn eat_sel_hint(&mut self) -> Result<Option<f64>> {
        if let Some(Token::Hint(content)) = self.peek() {
            let content = content.clone();
            self.pos += 1;
            let mut parts = content.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("sel"), Some(v)) => {
                    let sel: f64 = v
                        .parse()
                        .map_err(|_| DbError::Parse(format!("bad selectivity hint {content:?}")))?;
                    if !(0.0..=1.0).contains(&sel) {
                        return Err(DbError::Parse(format!(
                            "selectivity hint out of range: {sel}"
                        )));
                    }
                    Ok(Some(sel))
                }
                _ => Err(DbError::Parse(format!("unrecognized hint {content:?}"))),
            }
        } else {
            Ok(None)
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_keyword("select") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_keyword("insert") {
            self.insert().map(Statement::Insert)
        } else if self.eat_keyword("update") {
            self.update().map(Statement::Update)
        } else if self.eat_keyword("delete") {
            self.delete().map(Statement::Delete)
        } else {
            Err(DbError::Parse(format!(
                "expected SELECT/INSERT/UPDATE/DELETE, found {:?}",
                self.peek()
            )))
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("select")?;
        let mut stmt = SelectStmt {
            distinct: self.eat_keyword("distinct"),
            ..SelectStmt::default()
        };

        // Projection list.
        loop {
            if self.eat_symbol(Sym::Star) {
                stmt.items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("as") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                stmt.items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }

        // FROM clause with comma joins and JOIN … ON.
        if self.eat_keyword("from") {
            let mut on_preds: Vec<Expr> = Vec::new();
            stmt.from.push(self.table_ref()?);
            loop {
                if self.eat_symbol(Sym::Comma) {
                    stmt.from.push(self.table_ref()?);
                } else if self.peek_keyword("join")
                    || self.peek_keyword("inner")
                    || self.peek_keyword("left")
                {
                    // INNER/LEFT are accepted and planned identically;
                    // cardinality differences of outer joins are below
                    // the fidelity this simulation needs.
                    self.eat_keyword("inner");
                    self.eat_keyword("left");
                    self.eat_keyword("outer");
                    self.expect_keyword("join")?;
                    stmt.from.push(self.table_ref()?);
                    self.expect_keyword("on")?;
                    on_preds.push(self.predicate()?);
                } else {
                    break;
                }
            }
            if !on_preds.is_empty() {
                let mut conj = on_preds;
                if self.eat_keyword("where") {
                    conj.push(self.predicate()?);
                }
                stmt.where_clause = Some(if conj.len() == 1 {
                    conj.pop().expect("len checked")
                } else {
                    Expr::And(conj)
                });
            } else if self.eat_keyword("where") {
                stmt.where_clause = Some(self.predicate()?);
            }
        }

        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                stmt.group_by.push(self.col_ref()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }

        if self.eat_keyword("having") {
            stmt.having = Some(self.predicate()?);
        }

        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let col = self.col_ref()?;
                let desc = if self.eat_keyword("desc") {
                    true
                } else {
                    self.eat_keyword("asc");
                    false
                };
                stmt.order_by.push((col, desc));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }

        if self.eat_keyword("limit") {
            let n = self.expect_number()?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(DbError::Parse(format!("bad LIMIT {n}")));
            }
            stmt.limit = Some(n as u64);
        }

        if stmt.items.is_empty() {
            return Err(DbError::Parse("empty projection list".into()));
        }
        Ok(stmt)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.expect_ident()?;
        // Optional alias: a bare identifier that is not a clause keyword.
        const CLAUSE_KEYWORDS: &[&str] = &[
            "where", "group", "having", "order", "limit", "join", "inner", "left", "on", "set",
        ];
        let alias = match self.peek() {
            Some(Token::Ident(w)) if !CLAUSE_KEYWORDS.contains(&w.as_str()) => {
                let w = w.clone();
                self.pos += 1;
                w
            }
            _ => table.clone(),
        };
        Ok(TableRef { table, alias })
    }

    fn col_ref(&mut self) -> Result<ColRef> {
        let first = self.expect_ident()?;
        if self.eat_symbol(Sym::Dot) {
            let column = self.expect_ident()?;
            Ok(ColRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                qualifier: None,
                column: first,
            })
        }
    }

    // ---- predicates --------------------------------------------------

    fn predicate(&mut self) -> Result<Expr> {
        self.or_pred()
    }

    fn or_pred(&mut self) -> Result<Expr> {
        let mut terms = vec![self.and_pred()?];
        while self.eat_keyword("or") {
            terms.push(self.and_pred()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("len checked")
        } else {
            Expr::Or(terms)
        })
    }

    fn and_pred(&mut self) -> Result<Expr> {
        let mut terms = vec![self.unary_pred()?];
        while self.eat_keyword("and") {
            terms.push(self.unary_pred()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("len checked")
        } else {
            Expr::And(terms)
        })
    }

    fn unary_pred(&mut self) -> Result<Expr> {
        if self.eat_keyword("not") {
            if self.eat_keyword("exists") {
                return self.exists_pred(true);
            }
            return Ok(Expr::Not(Box::new(self.unary_pred()?)));
        }
        if self.eat_keyword("exists") {
            return self.exists_pred(false);
        }
        self.comparison()
    }

    fn exists_pred(&mut self, negated: bool) -> Result<Expr> {
        self.expect_symbol(Sym::LParen)?;
        let query = Box::new(self.select()?);
        self.expect_symbol(Sym::RParen)?;
        let hint_sel = self.eat_sel_hint()?;
        Ok(Expr::Exists {
            query,
            negated,
            hint_sel,
        })
    }

    /// A comparison-ish predicate over arithmetic expressions, or a
    /// parenthesized sub-predicate.
    fn comparison(&mut self) -> Result<Expr> {
        // Disambiguate `(pred)` from `(expr)`/(scalar subquery): scan
        // for a top-level AND/OR/comparison inside parens is overkill —
        // instead parse an expression first and fall back when the next
        // token continues a predicate.
        let left = self.expr()?;

        if let Some(Token::Symbol(sym)) = self.peek() {
            let op = match sym {
                Sym::Eq => Some(BinOp::Eq),
                Sym::Ne => Some(BinOp::Ne),
                Sym::Lt => Some(BinOp::Lt),
                Sym::Le => Some(BinOp::Le),
                Sym::Gt => Some(BinOp::Gt),
                Sym::Ge => Some(BinOp::Ge),
                _ => None,
            };
            if let Some(op) = op {
                self.pos += 1;
                let right = self.expr()?;
                let hint_sel = self.eat_sel_hint()?;
                return Ok(Expr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                    hint_sel,
                });
            }
        }

        let negated = self.eat_keyword("not");
        if self.eat_keyword("between") {
            let lo = self.expr()?;
            self.expect_keyword("and")?;
            let hi = self.expr()?;
            let hint_sel = self.eat_sel_hint()?;
            let between = Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                hint_sel,
            };
            return Ok(if negated {
                Expr::Not(Box::new(between))
            } else {
                between
            });
        }
        if self.eat_keyword("like") {
            let pattern = match self.bump() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(DbError::Parse(format!(
                        "expected string pattern after LIKE, found {other:?}"
                    )))
                }
            };
            let hint_sel = self.eat_sel_hint()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
                hint_sel,
            });
        }
        if self.eat_keyword("in") {
            self.expect_symbol(Sym::LParen)?;
            if self.peek_keyword("select") {
                let query = Box::new(self.select()?);
                self.expect_symbol(Sym::RParen)?;
                let hint_sel = self.eat_sel_hint()?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query,
                    negated,
                    hint_sel,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            let hint_sel = self.eat_sel_hint()?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
                hint_sel,
            });
        }
        if negated {
            return Err(DbError::Parse("expected BETWEEN/LIKE/IN after NOT".into()));
        }
        // A bare expression in predicate position (e.g. the inside of
        // a parenthesized predicate that already parsed fully).
        Ok(left)
    }

    // ---- arithmetic expressions --------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.term()?;
        loop {
            let op = if self.eat_symbol(Sym::Plus) {
                BinOp::Add
            } else if self.eat_symbol(Sym::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            let right = self.term()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                hint_sel: None,
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        loop {
            let op = if self.eat_symbol(Sym::Star) {
                BinOp::Mul
            } else if self.eat_symbol(Sym::Slash) {
                BinOp::Div
            } else {
                break;
            };
            let right = self.factor()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                hint_sel: None,
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Number(n))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Token::Symbol(Sym::Minus)) => {
                self.pos += 1;
                let inner = self.factor()?;
                Ok(Expr::Binary {
                    op: BinOp::Sub,
                    left: Box::new(Expr::Number(0.0)),
                    right: Box::new(inner),
                    hint_sel: None,
                })
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                if self.peek_keyword("select") {
                    let q = self.select()?;
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                // Parenthesized predicate or arithmetic expression; the
                // predicate grammar subsumes plain expressions.
                let inner = self.predicate()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(word)) => {
                // Aggregates, scalar functions, or a column reference.
                let agg = match word.as_str() {
                    "count" => Some(AggFunc::Count),
                    "sum" => Some(AggFunc::Sum),
                    "avg" => Some(AggFunc::Avg),
                    "min" => Some(AggFunc::Min),
                    "max" => Some(AggFunc::Max),
                    _ => None,
                };
                let is_call = matches!(self.peek_at(1), Some(Token::Symbol(Sym::LParen)));
                if let (Some(func), true) = (agg, is_call) {
                    self.pos += 2; // name + '('
                    if self.eat_symbol(Sym::Star) {
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(Expr::Agg { func, arg: None });
                    }
                    self.eat_keyword("distinct"); // costed identically
                    let arg = self.expr()?;
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(Expr::Agg {
                        func,
                        arg: Some(Box::new(arg)),
                    });
                }
                if is_call {
                    self.pos += 2;
                    let mut args = Vec::new();
                    if !self.eat_symbol(Sym::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(Sym::Comma) {
                                break;
                            }
                        }
                        self.expect_symbol(Sym::RParen)?;
                    }
                    return Ok(Expr::Func { name: word, args });
                }
                Ok(Expr::Column(self.col_ref()?))
            }
            other => Err(DbError::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }

    // ---- DML ----------------------------------------------------------

    fn insert(&mut self) -> Result<InsertStmt> {
        self.expect_keyword("into")?;
        let table = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.eat_symbol(Sym::LParen) {
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
        }
        self.expect_keyword("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(InsertStmt {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<UpdateStmt> {
        let table = self.expect_ident()?;
        self.expect_keyword("set")?;
        let mut set = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_symbol(Sym::Eq)?;
            let val = self.expr()?;
            set.push((col, val));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("where") {
            Some(self.predicate()?)
        } else {
            None
        };
        Ok(UpdateStmt {
            table,
            set,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<DeleteStmt> {
        self.expect_keyword("from")?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_keyword("where") {
            Some(self.predicate()?)
        } else {
            None
        };
        Ok(DeleteStmt {
            table,
            where_clause,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_select() {
        let s = sel("SELECT a.x, b.y FROM t1 a, t2 b WHERE a.x = b.y");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 2);
        assert!(matches!(
            s.where_clause,
            Some(Expr::Binary { op: BinOp::Eq, .. })
        ));
    }

    #[test]
    fn parses_join_on_into_where() {
        let s = sel("SELECT * FROM t1 a JOIN t2 b ON a.k = b.k WHERE a.x > 5");
        assert_eq!(s.from.len(), 2);
        match s.where_clause {
            Some(Expr::And(parts)) => assert_eq!(parts.len(), 2),
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn parses_group_order_limit() {
        let s = sel("SELECT o_custkey, count(*), sum(o_totalprice) FROM orders \
             GROUP BY o_custkey HAVING count(*) > 5 ORDER BY o_custkey DESC LIMIT 10");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parses_between_like_in() {
        let s = sel("SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b LIKE 'x%' AND c IN (1, 2, 3)");
        match s.where_clause {
            Some(Expr::And(parts)) => {
                assert!(matches!(parts[0], Expr::Between { .. }));
                assert!(matches!(parts[1], Expr::Like { .. }));
                assert!(matches!(parts[2], Expr::InList { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_subqueries() {
        let s = sel(
            "SELECT * FROM t WHERE k IN (SELECT k FROM u WHERE u.v = 1) \
             AND EXISTS (SELECT * FROM w WHERE w.k = t.k) \
             AND q < (SELECT avg(q) FROM t)",
        );
        match s.where_clause {
            Some(Expr::And(parts)) => {
                assert!(matches!(parts[0], Expr::InSubquery { .. }));
                assert!(matches!(parts[1], Expr::Exists { negated: false, .. }));
                assert!(matches!(parts[2], Expr::Binary { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_selectivity_hint() {
        let s = sel("SELECT * FROM t WHERE a = 5 /*+ sel 0.01 */");
        match s.where_clause {
            Some(Expr::Binary { hint_sel, .. }) => assert_eq!(hint_sel, Some(0.01)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_range_hint() {
        assert!(parse_statement("SELECT * FROM t WHERE a = 5 /*+ sel 1.5 */").is_err());
    }

    #[test]
    fn parses_not_exists_and_not_in() {
        let s = sel(
            "SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.k = t.k) \
             AND a NOT IN (1, 2)",
        );
        match s.where_clause {
            Some(Expr::And(parts)) => {
                assert!(matches!(parts[0], Expr::Exists { negated: true, .. }));
                assert!(matches!(parts[1], Expr::InList { negated: true, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let s = sel("SELECT 1 + 2 * 3 FROM t");
        match &s.items[0] {
            SelectItem::Expr {
                expr:
                    Expr::Binary {
                        op: BinOp::Add,
                        right,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_count_star_and_distinct_agg() {
        let s = sel("SELECT count(*), count(distinct x), avg(y) FROM t");
        assert!(matches!(
            s.items[0],
            SelectItem::Expr {
                expr: Expr::Agg {
                    func: AggFunc::Count,
                    arg: None
                },
                ..
            }
        ));
    }

    #[test]
    fn parses_scalar_function_call() {
        let s = sel("SELECT substring(c, 1, 2) FROM t");
        assert!(matches!(
            s.items[0],
            SelectItem::Expr {
                expr: Expr::Func { .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_insert() {
        match parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap() {
            Statement::Insert(i) => {
                assert_eq!(i.table, "t");
                assert_eq!(i.columns, vec!["a", "b"]);
                assert_eq!(i.rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_update() {
        match parse_statement("UPDATE stock SET s_quantity = s_quantity - 10 WHERE s_i_id = 5")
            .unwrap()
        {
            Statement::Update(u) => {
                assert_eq!(u.table, "stock");
                assert_eq!(u.set.len(), 1);
                assert!(u.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_delete() {
        match parse_statement("DELETE FROM new_order WHERE no_o_id = 1").unwrap() {
            Statement::Delete(d) => {
                assert_eq!(d.table, "new_order");
                assert!(d.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_statement("SELECT 1 FROM t zig zag boom").is_err());
    }

    #[test]
    fn rejects_unknown_statement() {
        assert!(parse_statement("VACUUM t").is_err());
    }

    #[test]
    fn alias_does_not_swallow_keywords() {
        let s = sel("SELECT * FROM orders WHERE o_orderkey = 1");
        assert_eq!(s.from[0].alias, "orders");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_or_predicates() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 OR c = 3");
        match s.where_clause {
            Some(Expr::Or(parts)) => assert_eq!(parts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_predicates() {
        let s = sel("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        match s.where_clause {
            Some(Expr::And(parts)) => {
                assert!(matches!(parts[0], Expr::Or(_)));
            }
            other => panic!("{other:?}"),
        }
    }
}
