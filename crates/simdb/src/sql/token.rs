//! SQL lexer.

use crate::{DbError, Result};

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<>` or `!=`
    Ne,
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, lower-cased.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (single-quoted; `''` escapes a quote).
    Str(String),
    /// Optimizer hint comment `/*+ … */` (content, trimmed).
    Hint(String),
    /// Punctuation/operator.
    Symbol(Sym),
}

/// Tokenize `sql` into a vector of tokens.
///
/// Plain comments (`-- …` and `/* … */`) are skipped; hint comments
/// (`/*+ … */`) are surfaced as [`Token::Hint`].
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let is_hint = bytes.get(i + 2) == Some(&b'+');
                let start = if is_hint { i + 3 } else { i + 2 };
                let mut j = start;
                while j + 1 < bytes.len() && !(bytes[j] == b'*' && bytes[j + 1] == b'/') {
                    j += 1;
                }
                if j + 1 >= bytes.len() {
                    return Err(DbError::Lex("unterminated comment".into()));
                }
                if is_hint {
                    let content = std::str::from_utf8(&bytes[start..j])
                        .map_err(|_| DbError::Lex("non-utf8 hint".into()))?
                        .trim()
                        .to_string();
                    out.push(Token::Hint(content));
                }
                i = j + 2;
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(DbError::Lex("unterminated string literal".into()));
                    }
                    if bytes[j] == b'\'' {
                        if bytes.get(j + 1) == Some(&b'\'') {
                            s.push('\'');
                            j += 2;
                        } else {
                            break;
                        }
                    } else {
                        s.push(bytes[j] as char);
                        j += 1;
                    }
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &sql[start..i];
                let v: f64 = text
                    .parse()
                    .map_err(|_| DbError::Lex(format!("bad number literal {text:?}")))?;
                out.push(Token::Number(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_ascii_lowercase()));
            }
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semi));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Symbol(Sym::Ne));
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token::Symbol(Sym::Le));
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                }
                _ => {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            other => {
                return Err(DbError::Lex(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_select() {
        let toks = tokenize("SELECT a.x, 42 FROM t a WHERE a.x >= 3.5").unwrap();
        assert_eq!(toks[0], Token::Ident("select".into()));
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert!(toks.contains(&Token::Number(3.5)));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = tokenize("select 'it''s'").unwrap();
        assert_eq!(toks[1], Token::Str("it's".into()));
    }

    #[test]
    fn skips_plain_comments_keeps_hints() {
        let toks = tokenize("select 1 /* plain */ /*+ sel 0.25 */ -- tail\n").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("select".into()),
                Token::Number(1.0),
                Token::Hint("sel 0.25".into())
            ]
        );
    }

    #[test]
    fn lexes_all_comparison_spellings() {
        let toks = tokenize("a <> b != c <= d >= e < f > g = h").unwrap();
        let syms: Vec<Sym> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![
                Sym::Ne,
                Sym::Ne,
                Sym::Le,
                Sym::Ge,
                Sym::Lt,
                Sym::Gt,
                Sym::Eq
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("select 1.5e6, 2E-3").unwrap();
        assert!(toks.contains(&Token::Number(1.5e6)));
        assert!(toks.contains(&Token::Number(2e-3)));
    }

    #[test]
    fn reports_unterminated_string() {
        assert!(matches!(tokenize("select 'oops"), Err(DbError::Lex(_))));
    }

    #[test]
    fn reports_unterminated_comment() {
        assert!(matches!(tokenize("select /* oops"), Err(DbError::Lex(_))));
    }

    #[test]
    fn reports_stray_character() {
        assert!(matches!(tokenize("select #"), Err(DbError::Lex(_))));
    }
}
