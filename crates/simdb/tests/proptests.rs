//! Property-based tests over the SQL front-end and optimizer.

use proptest::prelude::*;
use vda_simdb::bind::bind_statement;
use vda_simdb::catalog::{table, Catalog, IndexDef};
use vda_simdb::optimizer::Optimizer;
use vda_simdb::plan::CostFactors;
use vda_simdb::sql::tokenize;

fn test_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(table(
        "t1",
        1_000_000.0,
        100.0,
        &[
            ("a", 1_000_000.0, 8.0),
            ("b", 100.0, 8.0),
            ("c", 50_000.0, 8.0),
        ],
    ));
    c.add_table(table(
        "t2",
        50_000.0,
        80.0,
        &[("a", 50_000.0, 8.0), ("d", 500.0, 8.0)],
    ));
    c.add_index(IndexDef {
        name: "t1_a".into(),
        table: "t1".into(),
        column: "a".into(),
    })
    .expect("valid index");
    c.add_index(IndexDef {
        name: "t2_a".into(),
        table: "t2".into(),
        column: "a".into(),
    })
    .expect("valid index");
    c
}

fn factors(work_mem: f64, buffer: f64) -> CostFactors {
    CostFactors {
        seq_page: 1.0,
        rand_page: 40.0,
        cpu_tuple: 0.01,
        cpu_operator: 0.01,
        cpu_index_tuple: 0.006,
        work_mem_pages: work_mem,
        buffer_pages: buffer,
    }
}

/// Strategy: a conjunctive filter query over t1 with random predicate
/// constants and hinted selectivities.
fn filter_query() -> impl Strategy<Value = String> {
    (
        0.0001f64..1.0,
        0.0001f64..1.0,
        1u32..1000,
        prop_oneof![Just("<"), Just("<="), Just(">"), Just(">="), Just("=")],
    )
        .prop_map(|(s1, s2, k, op)| {
            format!(
                "SELECT count(*) FROM t1 WHERE b {op} {k} /*+ sel {s1:.6} */ \
                 AND c < {k} /*+ sel {s2:.6} */"
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The lexer never panics and is deterministic on arbitrary input.
    #[test]
    fn tokenize_total_and_deterministic(input in ".{0,120}") {
        let a = tokenize(&input);
        let b = tokenize(&input);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "nondeterministic lexer: {other:?}"),
        }
    }

    /// Bound filter selectivities always land in [0, 1] and filtered
    /// rows never exceed base rows.
    #[test]
    fn selectivities_stay_in_range(sql in filter_query()) {
        let cat = test_catalog();
        let q = bind_statement(&sql, &cat).expect("generated queries bind");
        for rel in &q.relations {
            prop_assert!((0.0..=1.0).contains(&rel.filter_sel), "{}", rel.filter_sel);
            prop_assert!(rel.filtered_rows() <= rel.rows.max(1.0));
        }
    }

    /// Plan costs are finite, positive, and all work counters are
    /// non-negative for arbitrary filter queries and memory settings.
    #[test]
    fn plans_are_well_formed(sql in filter_query(), mem in 16.0f64..100_000.0, buf in 0.0f64..1_000_000.0) {
        let cat = test_catalog();
        let q = bind_statement(&sql, &cat).expect("binds");
        let plan = Optimizer::new(&cat, factors(mem, buf)).plan(&q);
        prop_assert!(plan.native_cost.is_finite() && plan.native_cost > 0.0);
        let c = &plan.counters;
        for v in [
            c.seq_pages, c.rand_pages, c.spill_pages, c.cpu_tuples,
            c.cpu_operators, c.cpu_index_tuples, c.rows_returned,
            c.write_pages, c.lock_requests,
        ] {
            prop_assert!(v >= 0.0 && v.is_finite(), "bad counter {v}");
        }
    }

    /// More operator memory never increases estimated cost (the
    /// optimizer may only switch to cheaper plans).
    #[test]
    fn cost_monotone_in_work_mem(sel in 0.001f64..0.9) {
        let cat = test_catalog();
        let sql = format!(
            "SELECT a, count(*) FROM t1 WHERE c < 5 /*+ sel {sel:.6} */ \
             GROUP BY a ORDER BY a"
        );
        let q = bind_statement(&sql, &cat).expect("binds");
        let mut prev = f64::INFINITY;
        for mem in [32.0, 128.0, 1024.0, 16_384.0, 262_144.0] {
            let cost = Optimizer::new(&cat, factors(mem, 10_000.0)).plan(&q).native_cost;
            prop_assert!(cost <= prev + 1e-9, "cost rose with memory: {cost} > {prev}");
            prev = cost;
        }
    }

    /// More buffer cache never increases estimated cost.
    #[test]
    fn cost_monotone_in_buffer(sel in 0.001f64..0.9) {
        let cat = test_catalog();
        let sql = format!("SELECT count(*) FROM t1 WHERE c < 5 /*+ sel {sel:.6} */");
        let q = bind_statement(&sql, &cat).expect("binds");
        let mut prev = f64::INFINITY;
        for buf in [0.0, 1_000.0, 10_000.0, 100_000.0] {
            let cost = Optimizer::new(&cat, factors(640.0, buf)).plan(&q).native_cost;
            prop_assert!(cost <= prev + 1e-9);
            prev = cost;
        }
    }

    /// Join planning is symmetric in FROM order: the same join in
    /// either table order produces the same cost and signature.
    #[test]
    fn join_order_in_text_is_irrelevant(sel in 0.001f64..0.5) {
        let cat = test_catalog();
        let a = format!(
            "SELECT count(*) FROM t1 x, t2 y WHERE x.a = y.a AND x.c < 9 /*+ sel {sel:.6} */"
        );
        let b = format!(
            "SELECT count(*) FROM t2 y, t1 x WHERE x.a = y.a AND x.c < 9 /*+ sel {sel:.6} */"
        );
        let f = factors(640.0, 10_000.0);
        let qa = bind_statement(&a, &cat).expect("binds");
        let qb = bind_statement(&b, &cat).expect("binds");
        let pa = Optimizer::new(&cat, f).plan(&qa);
        let pb = Optimizer::new(&cat, f).plan(&qb);
        prop_assert!((pa.native_cost - pb.native_cost).abs() < 1e-6 * pa.native_cost);
    }

    /// Estimated cost is linear in each CPU parameter for a fixed plan:
    /// the property §4.3's calibration equations rely on.
    #[test]
    fn cost_linear_in_cpu_params(scale in 0.5f64..4.0) {
        let cat = test_catalog();
        let q = bind_statement("SELECT count(*) FROM t1", &cat).expect("binds");
        let base = factors(640.0, 10_000.0);
        let cost = |f: CostFactors| Optimizer::new(&cat, f).plan(&q).native_cost;
        let c0 = cost(base);
        let mut up = base;
        up.cpu_tuple *= scale;
        let c1 = cost(up);
        // Difference must equal (scale-1) * cpu_tuple * tuples exactly.
        let plan = Optimizer::new(&cat, base).plan(&q);
        let expected = (scale - 1.0) * base.cpu_tuple * plan.counters.cpu_tuples;
        prop_assert!(((c1 - c0) - expected).abs() < 1e-6 * c0.max(1.0));
    }
}
