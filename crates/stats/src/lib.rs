#![warn(missing_docs)]

//! # vda-stats
//!
//! A small, self-contained numerical toolkit used throughout the
//! virtualization design advisor. The paper (Soror et al., *Automatic
//! Virtual Machine Configuration for Database Workloads*) relies on
//! three numerical building blocks, all implemented here from scratch:
//!
//! * **Linear regression** (simple and multi-dimensional ordinary least
//!   squares) — used to fit calibration functions `Cal_ik` (§4.3), to
//!   renormalize DB2-style timeron costs into seconds (§4.2), and to fit
//!   refined cost models from observed workload runtimes (§5).
//! * **Dense linear solves** (Gaussian elimination with partial
//!   pivoting) — used when a set of `k` calibration queries depends on
//!   `k` unknown optimizer parameters and the system of renormalized
//!   cost equations must be solved for the parameter values (§4.3).
//! * **Piecewise-linear models** — the memory cost model of §5.1, where
//!   each piece corresponds to one query-execution-plan regime.
//!
//! No external math crates are used; everything is plain `f64` code with
//! deterministic behaviour, which keeps the whole reproduction
//! bit-for-bit reproducible.

pub mod piecewise;
pub mod regression;
pub mod solve;
pub mod summary;

pub use piecewise::{Piece, PiecewiseReciprocal};
pub use regression::{LinearFit, MultiLinearFit, ReciprocalFit};
pub use solve::solve_dense;
pub use summary::{mean, population_variance, sample_stddev};

/// Error type for numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input slices were empty or of mismatched lengths.
    BadInput(String),
    /// The linear system (or normal equations) is singular or too
    /// ill-conditioned to solve reliably.
    Singular,
    /// Not enough observations to fit the requested number of
    /// coefficients.
    Underdetermined {
        /// Observations required for the fit.
        needed: usize,
        /// Observations provided.
        got: usize,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::BadInput(msg) => write!(f, "bad input: {msg}"),
            StatsError::Singular => write!(f, "singular or ill-conditioned system"),
            StatsError::Underdetermined { needed, got } => {
                write!(
                    f,
                    "underdetermined fit: need {needed} observations, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
