//! Piecewise reciprocal-linear cost models.
//!
//! §5.1 of the paper observes that memory-related performance follows a
//! *piecewise* linear-in-1/r behaviour: each piece corresponds to one
//! query-execution-plan regime, and plan changes (e.g. a multi-pass
//! hash join collapsing to a single pass) mark the piece boundaries.
//!
//! `Cost(W, [r]) = α_j/r + β_j   for r ∈ A_j`
//!
//! A [`PiecewiseReciprocal`] stores the pieces with their share
//! intervals. The intervals come from the candidate allocations probed
//! during configuration enumeration, so consecutive pieces may have a
//! *gap* between them (a share range where the advisor never called the
//! optimizer and the active plan is unknown). Lookups inside a gap are
//! resolved to the *closer* piece, exactly as §5.1 prescribes, until an
//! actual observation re-assigns the boundary.

use crate::regression::ReciprocalFit;
use serde::{Deserialize, Serialize};

/// One plan regime: a share interval and the reciprocal cost model that
/// holds inside it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Piece {
    /// Smallest share at which this piece's plan was observed.
    pub lo: f64,
    /// Largest share at which this piece's plan was observed.
    pub hi: f64,
    /// Cost model `α/r + β` valid within the interval.
    pub model: ReciprocalFit,
    /// Opaque identifier of the query-execution-plan regime this piece
    /// corresponds to (a plan signature hash in practice).
    pub plan_id: u64,
}

impl Piece {
    /// Whether `share` falls inside this piece's observed interval.
    #[inline]
    pub fn contains(&self, share: f64) -> bool {
        share >= self.lo && share <= self.hi
    }

    /// Distance from `share` to the interval (0 when inside).
    fn distance(&self, share: f64) -> f64 {
        if share < self.lo {
            self.lo - share
        } else if share > self.hi {
            share - self.hi
        } else {
            0.0
        }
    }
}

/// A piecewise reciprocal model over resource shares in `(0, 1]`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PiecewiseReciprocal {
    pieces: Vec<Piece>,
}

impl PiecewiseReciprocal {
    /// Build a model from pieces; they are sorted by interval start and
    /// must not overlap.
    pub fn new(mut pieces: Vec<Piece>) -> Self {
        pieces.sort_by(|a, b| a.lo.partial_cmp(&b.lo).unwrap_or(std::cmp::Ordering::Equal));
        debug_assert!(
            pieces.windows(2).all(|w| w[0].hi <= w[1].lo + 1e-12),
            "pieces must not overlap"
        );
        PiecewiseReciprocal { pieces }
    }

    /// Number of plan regimes in the model.
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// Whether the model has no pieces at all.
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Immutable view of the pieces, ordered by share interval.
    pub fn pieces(&self) -> &[Piece] {
        &self.pieces
    }

    /// Mutable access to one piece (used by refinement to scale α/β or
    /// to move an interval boundary after an arbitration observation).
    pub fn piece_mut(&mut self, idx: usize) -> &mut Piece {
        &mut self.pieces[idx]
    }

    /// Index of the piece governing `share`: the containing piece if
    /// one exists, otherwise the *closest* piece (the §5.1 gap rule).
    /// Returns `None` only for an empty model.
    pub fn piece_for(&self, share: f64) -> Option<usize> {
        if self.pieces.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, p) in self.pieces.iter().enumerate() {
            let d = p.distance(share);
            if d == 0.0 {
                return Some(i);
            }
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        Some(best)
    }

    /// Evaluate the model at `share` using the governing piece.
    /// Returns `None` for an empty model.
    pub fn predict(&self, share: f64) -> Option<f64> {
        self.piece_for(share)
            .map(|i| self.pieces[i].model.predict(share))
    }

    /// Scale **every** piece's coefficients by `factor` — the paper's
    /// first-iteration refinement heuristic, which assumes the
    /// optimizer's bias is consistent across all plan regimes.
    pub fn scale_all(&mut self, factor: f64) {
        for p in &mut self.pieces {
            p.model = p.model.scaled(factor);
        }
    }

    /// Scale one piece's coefficients by `factor` — used from the
    /// second refinement iteration onwards, when an actual observation
    /// only informs the interval it fell into.
    pub fn scale_piece(&mut self, idx: usize, factor: f64) {
        let p = &mut self.pieces[idx];
        p.model = p.model.scaled(factor);
    }

    /// Extend piece `idx`'s interval so it contains `share` (boundary
    /// arbitration after an actual observation inside a gap). The
    /// neighbouring piece is never shrunk below its own observations.
    pub fn absorb_share(&mut self, idx: usize, share: f64) {
        let p = &mut self.pieces[idx];
        if share < p.lo {
            p.lo = share;
        } else if share > p.hi {
            p.hi = share;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(alpha: f64, beta: f64) -> ReciprocalFit {
        ReciprocalFit {
            alpha,
            beta,
            r_squared: 1.0,
        }
    }

    fn two_piece() -> PiecewiseReciprocal {
        PiecewiseReciprocal::new(vec![
            Piece {
                lo: 0.1,
                hi: 0.4,
                model: model(20.0, 5.0),
                plan_id: 1,
            },
            Piece {
                lo: 0.6,
                hi: 1.0,
                model: model(8.0, 2.0),
                plan_id: 2,
            },
        ])
    }

    #[test]
    fn lookup_inside_piece() {
        let m = two_piece();
        assert_eq!(m.piece_for(0.25), Some(0));
        assert_eq!(m.piece_for(0.8), Some(1));
    }

    #[test]
    fn gap_resolves_to_closer_piece() {
        let m = two_piece();
        // 0.45 is 0.05 from piece 0 and 0.15 from piece 1.
        assert_eq!(m.piece_for(0.45), Some(0));
        // 0.55 is 0.15 from piece 0 and 0.05 from piece 1.
        assert_eq!(m.piece_for(0.55), Some(1));
    }

    #[test]
    fn predict_uses_governing_piece() {
        let m = two_piece();
        let got = m.predict(0.8).unwrap();
        assert!((got - (8.0 / 0.8 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn scale_all_scales_every_piece() {
        let mut m = two_piece();
        m.scale_all(2.0);
        assert!((m.pieces()[0].model.alpha - 40.0).abs() < 1e-12);
        assert!((m.pieces()[1].model.beta - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scale_piece_targets_one_regime() {
        let mut m = two_piece();
        m.scale_piece(1, 3.0);
        assert!((m.pieces()[0].model.alpha - 20.0).abs() < 1e-12);
        assert!((m.pieces()[1].model.alpha - 24.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_share_extends_interval() {
        let mut m = two_piece();
        m.absorb_share(1, 0.5);
        assert_eq!(m.piece_for(0.5), Some(1));
        assert!(m.pieces()[1].contains(0.5));
    }

    #[test]
    fn empty_model_has_no_piece() {
        let m = PiecewiseReciprocal::default();
        assert!(m.is_empty());
        assert_eq!(m.piece_for(0.5), None);
        assert_eq!(m.predict(0.5), None);
    }

    #[test]
    fn pieces_sorted_on_construction() {
        let m = PiecewiseReciprocal::new(vec![
            Piece {
                lo: 0.6,
                hi: 1.0,
                model: model(1.0, 0.0),
                plan_id: 2,
            },
            Piece {
                lo: 0.1,
                hi: 0.4,
                model: model(2.0, 0.0),
                plan_id: 1,
            },
        ]);
        assert_eq!(m.pieces()[0].plan_id, 1);
        assert_eq!(m.pieces()[1].plan_id, 2);
    }
}
