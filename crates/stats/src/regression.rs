//! Ordinary least-squares regression, simple and multi-dimensional.
//!
//! Three fits appear in the paper and all are provided here:
//!
//! * [`LinearFit`] — `y = intercept + slope·x`. Used for DB2-style
//!   timeron renormalization (§4.2) and for modelling optimizer CPU
//!   parameters as a linear function of `1/cpu_share` (§4.4).
//! * [`ReciprocalFit`] — `y = alpha/x + beta`, the workload cost model
//!   of §5.1 (cost is linear in the *inverse* of the CPU allocation).
//!   Internally this is a [`LinearFit`] on transformed abscissae, but it
//!   is a distinct type so call sites cannot mix the two bases up.
//! * [`MultiLinearFit`] — `y = β₀ + Σ βj·xj`, the multi-dimensional
//!   regression of §5.2 used once refinement has observed at least `M`
//!   actual costs in one plan interval.

use crate::{solve_dense, Result, StatsError};
use serde::{Deserialize, Serialize};

/// A fitted simple linear model `y = intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Constant term of the fitted line.
    pub intercept: f64,
    /// Slope of the fitted line.
    pub slope: f64,
    /// Coefficient of determination of the fit (1.0 for a perfect fit,
    /// may be negative for models worse than the mean).
    pub r_squared: f64,
}

impl LinearFit {
    /// Fit `y = intercept + slope·x` by ordinary least squares.
    ///
    /// # Errors
    ///
    /// Fails with [`StatsError::Underdetermined`] for fewer than two
    /// points and [`StatsError::Singular`] when all `x` are identical.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(StatsError::BadInput(format!(
                "length mismatch: {} xs, {} ys",
                xs.len(),
                ys.len()
            )));
        }
        if xs.len() < 2 {
            return Err(StatsError::Underdetermined {
                needed: 2,
                got: xs.len(),
            });
        }
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            sxx += (x - mean_x) * (x - mean_x);
            sxy += (x - mean_x) * (y - mean_y);
        }
        let x_scale = xs.iter().fold(0.0_f64, |a, &v| a.max(v.abs())).max(1.0);
        if sxx < 1e-12 * x_scale * x_scale {
            return Err(StatsError::Singular);
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;

        let ss_tot: f64 = ys.iter().map(|&y| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let pred = intercept + slope * x;
                (y - pred).powi(2)
            })
            .sum();
        let r_squared = if ss_tot <= f64::EPSILON {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(LinearFit {
            intercept,
            slope,
            r_squared,
        })
    }

    /// Evaluate the fitted line at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// A fitted reciprocal model `y = alpha / x + beta`.
///
/// This is the cost model of §5.1: workload completion time is linear
/// in the inverse of the allocated resource share, i.e.
/// `Cost(W, [r]) = α/r + β`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReciprocalFit {
    /// Coefficient on `1/x` — the paper's `α`. The "slope" that online
    /// refinement scales to correct the optimizer (§5.1).
    pub alpha: f64,
    /// Constant term — the paper's `β`.
    pub beta: f64,
    /// Coefficient of determination in the transformed (1/x) space.
    pub r_squared: f64,
}

impl ReciprocalFit {
    /// Fit `y = alpha/x + beta` over strictly positive abscissae.
    ///
    /// # Errors
    ///
    /// Fails for non-positive `x` values (a resource share of zero has
    /// no finite cost), for fewer than two points, or when all shares
    /// coincide.
    pub fn fit(shares: &[f64], costs: &[f64]) -> Result<Self> {
        if shares.iter().any(|&s| s <= 0.0) {
            return Err(StatsError::BadInput(
                "reciprocal fit requires strictly positive shares".into(),
            ));
        }
        let inv: Vec<f64> = shares.iter().map(|&s| 1.0 / s).collect();
        let lin = LinearFit::fit(&inv, costs)?;
        Ok(ReciprocalFit {
            alpha: lin.slope,
            beta: lin.intercept,
            r_squared: lin.r_squared,
        })
    }

    /// Evaluate the model at resource share `share`.
    #[inline]
    pub fn predict(&self, share: f64) -> f64 {
        self.alpha / share + self.beta
    }

    /// Scale both coefficients by `factor` — the §5.1 refinement
    /// heuristic `Cost' = (Act/Est)·(α/r) + (Act/Est)·β`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        ReciprocalFit {
            alpha: self.alpha * factor,
            beta: self.beta * factor,
            r_squared: self.r_squared,
        }
    }
}

/// A fitted multi-dimensional linear model `y = β₀ + Σ βj·xj`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLinearFit {
    /// Constant term β₀.
    pub intercept: f64,
    /// Per-dimension coefficients β₁..βd.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl MultiLinearFit {
    /// Fit by solving the normal equations `XᵀX β = Xᵀy`.
    ///
    /// Each row of `xs` is one observation of the `d` predictors.
    ///
    /// # Errors
    ///
    /// Fails when there are fewer observations than `d + 1`
    /// coefficients, on ragged input, or when the design matrix is
    /// rank-deficient.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(StatsError::BadInput(format!(
                "length mismatch: {} rows, {} ys",
                xs.len(),
                ys.len()
            )));
        }
        let n = xs.len();
        if n == 0 {
            return Err(StatsError::BadInput("no observations".into()));
        }
        let d = xs[0].len();
        if xs.iter().any(|row| row.len() != d) {
            return Err(StatsError::BadInput("ragged design matrix".into()));
        }
        let p = d + 1; // intercept + d coefficients
        if n < p {
            return Err(StatsError::Underdetermined { needed: p, got: n });
        }

        // Normal equations over the augmented design [1 | X].
        let mut xtx = vec![vec![0.0; p]; p];
        let mut xty = vec![0.0; p];
        #[allow(clippy::needless_range_loop)] // normal-equations kernel reads clearer indexed
        for (row, &y) in xs.iter().zip(ys) {
            let aug = |k: usize| if k == 0 { 1.0 } else { row[k - 1] };
            for i in 0..p {
                xty[i] += aug(i) * y;
                for j in 0..p {
                    xtx[i][j] += aug(i) * aug(j);
                }
            }
        }
        let beta = solve_dense(&xtx, &xty)?;

        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let ss_tot: f64 = ys.iter().map(|&y| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(row, &y)| {
                let pred = beta[0]
                    + row
                        .iter()
                        .zip(&beta[1..])
                        .map(|(&x, &b)| x * b)
                        .sum::<f64>();
                (y - pred).powi(2)
            })
            .sum();
        let r_squared = if ss_tot <= f64::EPSILON {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };

        Ok(MultiLinearFit {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
            r_squared,
        })
    }

    /// Evaluate the fitted model on one predictor row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.intercept
            + row
                .iter()
                .zip(&self.coefficients)
                .map(|(&x, &b)| x * b)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simple_fit_handles_noise() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.1, 3.9, 6.2, 7.8, 10.1];
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.1, "{fit:?}");
        assert!(fit.r_squared > 0.99, "{fit:?}");
    }

    #[test]
    fn simple_fit_rejects_underdetermined() {
        assert!(matches!(
            LinearFit::fit(&[1.0], &[1.0]).unwrap_err(),
            StatsError::Underdetermined { needed: 2, got: 1 }
        ));
    }

    #[test]
    fn simple_fit_rejects_constant_x() {
        assert_eq!(
            LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).unwrap_err(),
            StatsError::Singular
        );
    }

    #[test]
    fn reciprocal_fit_recovers_cost_model() {
        // Cost(W,[r]) = 12/r + 4, sampled at greedy-search shares.
        let shares = [0.1, 0.25, 0.5, 0.75, 1.0];
        let costs: Vec<f64> = shares.iter().map(|r| 12.0 / r + 4.0).collect();
        let fit = ReciprocalFit::fit(&shares, &costs).unwrap();
        assert!((fit.alpha - 12.0).abs() < 1e-9, "{fit:?}");
        assert!((fit.beta - 4.0).abs() < 1e-9, "{fit:?}");
    }

    #[test]
    fn reciprocal_fit_rejects_zero_share() {
        assert!(ReciprocalFit::fit(&[0.0, 0.5], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn reciprocal_scaling_matches_paper_heuristic() {
        let fit = ReciprocalFit {
            alpha: 10.0,
            beta: 2.0,
            r_squared: 1.0,
        };
        // Act/Est = 1.5 scales both coefficients.
        let scaled = fit.scaled(1.5);
        assert!((scaled.predict(0.5) - 1.5 * fit.predict(0.5)).abs() < 1e-12);
    }

    #[test]
    fn multi_fit_recovers_plane() {
        // y = 1 + 2·x1 + 3·x2
        let xs = vec![
            vec![1.0, 1.0],
            vec![2.0, 1.0],
            vec![1.0, 2.0],
            vec![3.0, 5.0],
            vec![0.5, 0.25],
        ];
        let ys: Vec<f64> = xs.iter().map(|r| 1.0 + 2.0 * r[0] + 3.0 * r[1]).collect();
        let fit = MultiLinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.intercept - 1.0).abs() < 1e-9);
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn multi_fit_rejects_underdetermined() {
        let xs = vec![vec![1.0, 2.0], vec![2.0, 3.0]];
        let ys = vec![1.0, 2.0];
        assert!(matches!(
            MultiLinearFit::fit(&xs, &ys).unwrap_err(),
            StatsError::Underdetermined { needed: 3, got: 2 }
        ));
    }

    #[test]
    fn multi_fit_matches_simple_fit_in_one_dimension() {
        let xs1 = [1.0, 2.0, 4.0, 8.0];
        let ys = [3.0, 5.5, 8.0, 17.0];
        let simple = LinearFit::fit(&xs1, &ys).unwrap();
        let rows: Vec<Vec<f64>> = xs1.iter().map(|&x| vec![x]).collect();
        let multi = MultiLinearFit::fit(&rows, &ys).unwrap();
        assert!((multi.intercept - simple.intercept).abs() < 1e-9);
        assert!((multi.coefficients[0] - simple.slope).abs() < 1e-9);
    }
}
