//! Dense linear-system solving via Gaussian elimination with partial
//! pivoting.
//!
//! The systems solved during optimizer calibration are tiny (2×2 up to
//! roughly 5×5 — one equation per calibration query, one unknown per
//! descriptive optimizer parameter, §4.3 of the paper), so a
//! straightforward `O(n³)` elimination is both adequate and easy to
//! audit.

use crate::{Result, StatsError};

/// Relative pivot threshold below which a matrix is treated as singular.
const PIVOT_EPS: f64 = 1e-12;

/// Solve the dense system `A·x = b` in place, returning `x`.
///
/// `a` is a row-major `n × n` matrix given as `n` rows; `b` has length
/// `n`. Partial pivoting keeps the elimination numerically stable for
/// the mildly scaled systems produced by calibration (costs in seconds
/// vs. parameters spanning a few orders of magnitude).
///
/// # Errors
///
/// Returns [`StatsError::BadInput`] on shape mismatch and
/// [`StatsError::Singular`] when no usable pivot exists.
///
/// # Examples
///
/// ```
/// let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
/// let b = vec![5.0, 10.0];
/// let x = vda_stats::solve_dense(&a, &b).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
pub fn solve_dense(a: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>> {
    let n = a.len();
    if n == 0 {
        return Err(StatsError::BadInput("empty system".into()));
    }
    if b.len() != n || a.iter().any(|row| row.len() != n) {
        return Err(StatsError::BadInput(format!(
            "shape mismatch: {n} rows, rhs of length {}",
            b.len()
        )));
    }

    // Build the augmented matrix so elimination can mutate freely.
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b.iter())
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    // Scale reference for the singularity test: the largest magnitude
    // in the original matrix.
    let scale = m
        .iter()
        .flat_map(|r| r[..n].iter())
        .fold(0.0_f64, |acc, &v| acc.max(v.abs()))
        .max(1.0);

    for col in 0..n {
        // Partial pivoting: bring the largest remaining entry in this
        // column to the diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if m[pivot_row][col].abs() < PIVOT_EPS * scale {
            return Err(StatsError::Singular);
        }
        m.swap(col, pivot_row);

        let pivot = m[col][col];
        for row in (col + 1)..n {
            let factor = m[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // augmented-matrix sweep reads clearer indexed
            for k in col..=n {
                m[row][k] -= factor * m[col][k];
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for col in (row + 1)..n {
            acc -= m[row][col] * x[col];
        }
        x[row] = acc / m[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let b = vec![4.0, -2.5];
        assert_eq!(solve_dense(&a, &b).unwrap(), vec![4.0, -2.5]);
    }

    #[test]
    fn solves_3x3() {
        // x = 1, y = -2, z = 3
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let b = vec![-3.0, 5.0, 2.0];
        let x = solve_dense(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10, "{x:?}");
        assert!((x[1] + 2.0).abs() < 1e-10, "{x:?}");
        assert!((x[2] - 3.0).abs() < 1e-10, "{x:?}");
    }

    #[test]
    fn needs_pivoting() {
        // A zero on the initial diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let b = vec![7.0, 9.0];
        let x = solve_dense(&a, &b).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert_eq!(solve_dense(&a, &b).unwrap_err(), StatsError::Singular);
    }

    #[test]
    fn rejects_bad_shape() {
        let a = vec![vec![1.0, 2.0]];
        let b = vec![1.0, 2.0];
        assert!(matches!(
            solve_dense(&a, &b).unwrap_err(),
            StatsError::BadInput(_)
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            solve_dense(&[], &[]).unwrap_err(),
            StatsError::BadInput(_)
        ));
    }

    #[test]
    fn solves_calibration_style_system() {
        // Two calibration queries in two unknowns (cpu_tuple_cost t and
        // cpu_operator_cost o), mirroring the PostgreSQL example from
        // §4.3: q1 = 1e6·t + 1e6·o, q2 = 1e6·t + 3e6·o.
        let t = 2.4e-7;
        let o = 5.0e-8;
        let a = vec![vec![1.0e6, 1.0e6], vec![1.0e6, 3.0e6]];
        let b = vec![1.0e6 * t + 1.0e6 * o, 1.0e6 * t + 3.0e6 * o];
        let x = solve_dense(&a, &b).unwrap();
        assert!((x[0] - t).abs() / t < 1e-9);
        assert!((x[1] - o).abs() / o < 1e-9);
    }
}
