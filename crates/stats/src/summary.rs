//! Tiny descriptive-statistics helpers shared by calibration and the
//! experiment harness.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`); `0.0` for fewer than one item.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (divides by `n - 1`); `0.0` for fewer than
/// two items.
pub fn sample_stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_basic() {
        assert!(
            (population_variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 4.0).abs() < 1e-12
        );
        assert_eq!(population_variance(&[]), 0.0);
    }

    #[test]
    fn stddev_basic() {
        let s = sample_stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(sample_stddev(&[1.0]), 0.0);
    }
}
