//! Property-based tests for the numerical toolkit.

use proptest::prelude::*;
use vda_stats::{
    solve_dense, LinearFit, MultiLinearFit, Piece, PiecewiseReciprocal, ReciprocalFit,
};

fn small_matrix(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, n), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// If Gaussian elimination returns a solution, it satisfies the
    /// system (residual small relative to the data scale).
    #[test]
    fn solve_dense_residual_is_small(a in small_matrix(3), x in proptest::collection::vec(-50.0f64..50.0, 3)) {
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a[i][j] * x[j]).sum())
            .collect();
        if let Ok(got) = solve_dense(&a, &b) {
            #[allow(clippy::needless_range_loop)]
            for i in 0..3 {
                let lhs: f64 = (0..3).map(|j| a[i][j] * got[j]).sum();
                let scale = b[i].abs().max(1.0);
                prop_assert!((lhs - b[i]).abs() < 1e-6 * scale);
            }
        }
    }

    /// A planted diagonally-dominant system is always solvable and
    /// recovers its solution.
    #[test]
    fn solve_dense_recovers_dominant_systems(
        mut a in small_matrix(4),
        x in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        for (i, row) in a.iter_mut().enumerate() {
            let row_sum: f64 = row.iter().map(|v| v.abs()).sum();
            row[i] = row_sum + 1.0; // force strict diagonal dominance
        }
        let b: Vec<f64> = (0..4)
            .map(|i| (0..4).map(|j| a[i][j] * x[j]).sum())
            .collect();
        let got = solve_dense(&a, &b).expect("dominant systems are nonsingular");
        for (g, want) in got.iter().zip(&x) {
            prop_assert!((g - want).abs() < 1e-6, "{g} vs {want}");
        }
    }

    /// Linear fits are invariant to observation order.
    #[test]
    fn linear_fit_order_invariant(pairs in proptest::collection::vec((0.1f64..100.0, -100.0f64..100.0), 4..12)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let forward = LinearFit::fit(&xs, &ys);
        let mut rev_x = xs.clone();
        let mut rev_y = ys.clone();
        rev_x.reverse();
        rev_y.reverse();
        let backward = LinearFit::fit(&rev_x, &rev_y);
        match (forward, backward) {
            (Ok(f), Ok(b)) => {
                prop_assert!((f.slope - b.slope).abs() < 1e-6);
                prop_assert!((f.intercept - b.intercept).abs() < 1e-6);
            }
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "inconsistent outcomes: {other:?}"),
        }
    }

    /// R² of a perfect fit is 1; adding symmetric noise cannot raise it
    /// above 1.
    #[test]
    fn r_squared_bounded(slope in -10.0f64..10.0, noise in 0.0f64..5.0) {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| slope * x + if i % 2 == 0 { noise } else { -noise })
            .collect();
        let fit = LinearFit::fit(&xs, &ys).expect("distinct xs");
        prop_assert!(fit.r_squared <= 1.0 + 1e-12);
    }

    /// Scaling a reciprocal fit scales its predictions everywhere.
    #[test]
    fn reciprocal_scaling_is_uniform(alpha in 0.1f64..50.0, beta in 0.0f64..50.0, k in 0.1f64..10.0) {
        let fit = ReciprocalFit { alpha, beta, r_squared: 1.0 };
        let scaled = fit.scaled(k);
        for share in [0.05, 0.3, 0.8, 1.0] {
            prop_assert!((scaled.predict(share) - k * fit.predict(share)).abs() < 1e-9);
        }
    }

    /// Multi-linear fit predictions reproduce the training data for
    /// well-posed planted problems.
    #[test]
    fn multi_fit_interpolates_planted(b0 in -5.0f64..5.0, b1 in -5.0f64..5.0) {
        let rows: Vec<Vec<f64>> = (1..8).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| b0 + b1 * r[0]).collect();
        let fit = MultiLinearFit::fit(&rows, &ys).expect("well-posed");
        for (r, y) in rows.iter().zip(&ys) {
            prop_assert!((fit.predict(r) - y).abs() < 1e-6);
        }
    }

    /// Piecewise lookup always returns an in-bounds piece and a finite
    /// prediction, for any query share.
    #[test]
    fn piecewise_lookup_is_total(share in 0.0f64..1.5) {
        let model = PiecewiseReciprocal::new(vec![
            Piece { lo: 0.1, hi: 0.3, model: ReciprocalFit { alpha: 5.0, beta: 1.0, r_squared: 1.0 }, plan_id: 1 },
            Piece { lo: 0.5, hi: 0.9, model: ReciprocalFit { alpha: 2.0, beta: 0.5, r_squared: 1.0 }, plan_id: 2 },
        ]);
        let idx = model.piece_for(share).expect("non-empty model");
        prop_assert!(idx < model.len());
        let pred = model.predict(share.max(0.01)).expect("non-empty model");
        prop_assert!(pred.is_finite());
    }
}
