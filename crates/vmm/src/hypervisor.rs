//! Hypervisor: VM admission, share enforcement, and the I/O-contention
//! environment of §7.1.

use crate::machine::PhysicalMachine;
use crate::perf::VmPerf;
use serde::{Deserialize, Serialize};

/// Requested configuration for one virtual machine, expressed as
/// *shares* of the physical machine — exactly the decision variables
/// `R_i = [r_i1 … r_iM]` of the virtualization design problem. The
/// paper's VMM controls CPU and memory only; `disk_share` opens the
/// disk-bandwidth axis (default `1.0` — the whole, uncontrolled disk,
/// which reproduces the paper's environment exactly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Fraction of total CPU capacity in `(0, 1]`.
    pub cpu_share: f64,
    /// Fraction of total physical memory in `(0, 1]`.
    pub memory_share: f64,
    /// Fraction of the disk subsystem's bandwidth in `(0, 1]`. A VM
    /// holding `d` sees every page read take `1/d` times longer (see
    /// [`PhysicalMachine::disk_slice`]).
    pub disk_share: f64,
}

impl VmConfig {
    /// A convenience constructor that validates shares eagerly. The
    /// disk share defaults to `1.0` (the paper's M = 2 environment).
    pub fn new(cpu_share: f64, memory_share: f64) -> Result<Self, VmmError> {
        Self::with_disk(cpu_share, memory_share, 1.0)
    }

    /// A constructor naming all three controllable shares.
    pub fn with_disk(cpu_share: f64, memory_share: f64, disk_share: f64) -> Result<Self, VmmError> {
        let cfg = VmConfig {
            cpu_share,
            memory_share,
            disk_share,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), VmmError> {
        for (name, v) in [
            ("cpu", self.cpu_share),
            ("memory", self.memory_share),
            ("disk", self.disk_share),
        ] {
            if !(v > 0.0 && v <= 1.0 && v.is_finite()) {
                return Err(VmmError::InvalidShare {
                    resource: name,
                    value: v,
                });
            }
        }
        Ok(())
    }
}

/// Identifier of a realized VM inside one [`Hypervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VmHandle(pub usize);

/// Errors raised by the hypervisor model.
#[derive(Debug, Clone, PartialEq)]
pub enum VmmError {
    /// A share was outside `(0, 1]`.
    InvalidShare {
        /// Which resource the share was for.
        resource: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Admitting the VM would oversubscribe a resource.
    Oversubscribed {
        /// Which resource would be oversubscribed.
        resource: &'static str,
        /// Total share after admission (> 1).
        total: f64,
    },
    /// The handle does not name a realized VM.
    UnknownVm(usize),
}

impl std::fmt::Display for VmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmmError::InvalidShare { resource, value } => {
                write!(f, "invalid {resource} share {value}; must be in (0, 1]")
            }
            VmmError::Oversubscribed { resource, total } => {
                write!(f, "{resource} oversubscribed: total share {total:.3} > 1")
            }
            VmmError::UnknownVm(id) => write!(f, "unknown VM handle {id}"),
        }
    }
}

impl std::error::Error for VmmError {}

/// The simulated virtual machine monitor.
///
/// Mirrors the paper's execution setup (§7.1): VMs receive hard CPU
/// and memory shares, while disk bandwidth is *not* isolated by
/// default — an always-on I/O-contention VM inflates everyone's I/O
/// service times by a constant factor, which is also active during
/// calibration so that calibrated parameters describe the contended
/// environment.
///
/// Beyond the paper, the hypervisor can also *throttle* each VM's disk
/// bandwidth to its [`VmConfig::disk_share`]: the VM then sees
/// [`PhysicalMachine::disk_slice`] of the device (on top of the
/// contention factor). With the default share of `1.0` nothing
/// changes. Admission enforces `Σ disk_share ≤ 1` only when
/// [`Hypervisor::set_disk_isolation`] enables it — legacy M = 2
/// configurations all carry the default full disk share, which is not
/// an allocation claim.
#[derive(Debug, Clone)]
pub struct Hypervisor {
    machine: PhysicalMachine,
    /// Disk service-time multiplier (≥ 1) modelling the I/O-contention
    /// VM that the paper keeps running next to every workload VM.
    io_contention: f64,
    /// Whether admission enforces `Σ disk_share ≤ 1` (off by default:
    /// the paper's VMM does not isolate disk bandwidth).
    disk_isolation: bool,
    vms: Vec<VmConfig>,
}

impl Hypervisor {
    /// Create a hypervisor over `machine` with the paper's default
    /// I/O-contention VM enabled (factor 2: the contender roughly
    /// halves effective disk bandwidth).
    pub fn new(machine: PhysicalMachine) -> Self {
        Hypervisor {
            machine,
            io_contention: 2.0,
            disk_isolation: false,
            vms: Vec::new(),
        }
    }

    /// Create a hypervisor with an explicit I/O-contention factor
    /// (use `1.0` for the idealized isolated-disk environment).
    pub fn with_io_contention(machine: PhysicalMachine, factor: f64) -> Self {
        assert!(factor >= 1.0, "contention factor must be >= 1");
        Hypervisor {
            machine,
            io_contention: factor,
            disk_isolation: false,
            vms: Vec::new(),
        }
    }

    /// The physical machine being shared.
    pub fn machine(&self) -> &PhysicalMachine {
        &self.machine
    }

    /// Current I/O-contention multiplier.
    pub fn io_contention(&self) -> f64 {
        self.io_contention
    }

    /// Enable/disable disk-bandwidth admission control (`Σ disk_share
    /// ≤ 1`). Leave off for the paper's environment, turn on when the
    /// advisor controls the [`disk axis`](VmConfig::disk_share).
    pub fn set_disk_isolation(&mut self, enabled: bool) {
        self.disk_isolation = enabled;
    }

    /// Whether disk-bandwidth admission control is enforced.
    pub fn disk_isolation(&self) -> bool {
        self.disk_isolation
    }

    /// Sum of shares currently admitted for (cpu, memory, disk).
    pub fn committed_shares(&self) -> (f64, f64, f64) {
        self.vms.iter().fold((0.0, 0.0, 0.0), |(c, m, d), vm| {
            (c + vm.cpu_share, m + vm.memory_share, d + vm.disk_share)
        })
    }

    /// Shares the admission check enforces for a VM entering a pool
    /// that already committed `(cpu, mem, disk)`.
    fn check_capacity(&self, cfg: &VmConfig, committed: (f64, f64, f64)) -> Result<(), VmmError> {
        // A small epsilon absorbs the floating-point dust produced by
        // repeated ±delta share shifts during greedy search.
        const EPS: f64 = 1e-9;
        let (cpu, mem, disk) = committed;
        if cpu + cfg.cpu_share > 1.0 + EPS {
            return Err(VmmError::Oversubscribed {
                resource: "cpu",
                total: cpu + cfg.cpu_share,
            });
        }
        if mem + cfg.memory_share > 1.0 + EPS {
            return Err(VmmError::Oversubscribed {
                resource: "memory",
                total: mem + cfg.memory_share,
            });
        }
        if self.disk_isolation && disk + cfg.disk_share > 1.0 + EPS {
            return Err(VmmError::Oversubscribed {
                resource: "disk",
                total: disk + cfg.disk_share,
            });
        }
        Ok(())
    }

    /// Admit a VM, enforcing `Σ r_ij ≤ 1` per isolated resource.
    pub fn create_vm(&mut self, cfg: VmConfig) -> Result<VmHandle, VmmError> {
        cfg.validate()?;
        self.check_capacity(&cfg, self.committed_shares())?;
        self.vms.push(cfg);
        Ok(VmHandle(self.vms.len() - 1))
    }

    /// Reconfigure an existing VM (the dynamic-management path: shares
    /// are adjusted between monitoring periods without re-creating the
    /// VM).
    pub fn reconfigure(&mut self, vm: VmHandle, cfg: VmConfig) -> Result<(), VmmError> {
        cfg.validate()?;
        if vm.0 >= self.vms.len() {
            return Err(VmmError::UnknownVm(vm.0));
        }
        let (mut cpu, mut mem, mut disk) = self.committed_shares();
        cpu -= self.vms[vm.0].cpu_share;
        mem -= self.vms[vm.0].memory_share;
        disk -= self.vms[vm.0].disk_share;
        self.check_capacity(&cfg, (cpu, mem, disk))?;
        self.vms[vm.0] = cfg;
        Ok(())
    }

    /// Performance view of an admitted VM.
    pub fn perf(&self, vm: VmHandle) -> Result<VmPerf, VmmError> {
        let cfg = self
            .vms
            .get(vm.0)
            .copied()
            .ok_or(VmmError::UnknownVm(vm.0))?;
        Ok(self.perf_for(cfg))
    }

    /// Performance view for a hypothetical configuration, without
    /// admitting a VM. This is what calibration and what-if costing
    /// use: "if the VM were configured like this, how would the
    /// hardware behave?"
    pub fn perf_for(&self, cfg: VmConfig) -> VmPerf {
        let disk = self.machine.disk_slice(cfg.disk_share);
        VmPerf {
            cpu_hz: self.machine.total_hz() * cfg.cpu_share,
            seq_page_secs: disk.seq_page_secs(self.machine.page_kb) * self.io_contention,
            rand_page_secs: disk.rand_page_secs(self.machine.page_kb) * self.io_contention,
            memory_mb: self.machine.memory_mb * cfg.memory_share,
            page_kb: self.machine.page_kb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv() -> Hypervisor {
        Hypervisor::new(PhysicalMachine::paper_testbed())
    }

    #[test]
    fn admits_within_capacity() {
        let mut h = hv();
        let a = h.create_vm(VmConfig::new(0.5, 0.5).unwrap()).unwrap();
        let b = h.create_vm(VmConfig::new(0.5, 0.5).unwrap()).unwrap();
        assert_ne!(a, b);
        let (c, m, _) = h.committed_shares();
        assert!((c - 1.0).abs() < 1e-12);
        assert!((m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_oversubscription() {
        let mut h = hv();
        h.create_vm(VmConfig::new(0.7, 0.5).unwrap()).unwrap();
        let err = h.create_vm(VmConfig::new(0.4, 0.3).unwrap()).unwrap_err();
        assert!(matches!(
            err,
            VmmError::Oversubscribed {
                resource: "cpu",
                ..
            }
        ));
    }

    #[test]
    fn rejects_invalid_share() {
        assert!(VmConfig::new(0.0, 0.5).is_err());
        assert!(VmConfig::new(1.2, 0.5).is_err());
        assert!(VmConfig::new(0.5, f64::NAN).is_err());
        assert!(VmConfig::with_disk(0.5, 0.5, 0.0).is_err());
        assert!(VmConfig::with_disk(0.5, 0.5, 1.5).is_err());
    }

    #[test]
    fn cpu_scales_linearly_with_share() {
        let h = hv();
        let half = h.perf_for(VmConfig::new(0.5, 0.5).unwrap());
        let full = h.perf_for(VmConfig::new(1.0, 0.5).unwrap());
        assert!((full.cpu_hz / half.cpu_hz - 2.0).abs() < 1e-12);
        // I/O times do not depend on the CPU share.
        assert_eq!(half.seq_page_secs, full.seq_page_secs);
    }

    #[test]
    fn memory_grant_scales_with_share() {
        let h = hv();
        let p = h.perf_for(VmConfig::new(0.5, 0.25).unwrap());
        assert!((p.memory_mb - 2048.0).abs() < 1e-9);
    }

    #[test]
    fn full_disk_share_reproduces_the_legacy_io_times() {
        // The compat contract: disk_share = 1.0 must be bit-identical
        // to the pre-disk-axis hypervisor.
        let h = hv();
        let legacy_seq = h.machine().disk.seq_page_secs(h.machine().page_kb) * h.io_contention();
        let legacy_rand = h.machine().disk.rand_page_secs(h.machine().page_kb) * h.io_contention();
        let p = h.perf_for(VmConfig::new(0.5, 0.5).unwrap());
        assert_eq!(p.seq_page_secs, legacy_seq);
        assert_eq!(p.rand_page_secs, legacy_rand);
    }

    #[test]
    fn disk_share_inflates_io_times_only() {
        let h = hv();
        let full = h.perf_for(VmConfig::new(0.5, 0.5).unwrap());
        let half = h.perf_for(VmConfig::with_disk(0.5, 0.5, 0.5).unwrap());
        // Sequential reads take exactly 1/share times longer.
        assert!((half.seq_page_secs / full.seq_page_secs - 2.0).abs() < 1e-12);
        // Random reads: both the seek rate and the transfer scale.
        assert!(half.rand_page_secs > full.rand_page_secs);
        assert_eq!(half.cpu_hz, full.cpu_hz);
        assert_eq!(half.memory_mb, full.memory_mb);
    }

    #[test]
    fn disk_isolation_gates_admission() {
        let mut h = hv();
        // Off (default): two full-disk VMs coexist, as in the paper.
        h.create_vm(VmConfig::new(0.3, 0.3).unwrap()).unwrap();
        h.create_vm(VmConfig::new(0.3, 0.3).unwrap()).unwrap();
        // On: the sum is enforced.
        let mut h = hv();
        h.set_disk_isolation(true);
        h.create_vm(VmConfig::with_disk(0.3, 0.3, 0.6).unwrap())
            .unwrap();
        let err = h
            .create_vm(VmConfig::with_disk(0.3, 0.3, 0.6).unwrap())
            .unwrap_err();
        assert!(matches!(
            err,
            VmmError::Oversubscribed {
                resource: "disk",
                ..
            }
        ));
        h.create_vm(VmConfig::with_disk(0.3, 0.3, 0.4).unwrap())
            .unwrap();
    }

    #[test]
    fn contention_inflates_io_only() {
        let m = PhysicalMachine::paper_testbed();
        let quiet = Hypervisor::with_io_contention(m, 1.0);
        let noisy = Hypervisor::with_io_contention(m, 2.0);
        let cfg = VmConfig::new(0.5, 0.5).unwrap();
        let q = quiet.perf_for(cfg);
        let n = noisy.perf_for(cfg);
        assert!((n.seq_page_secs / q.seq_page_secs - 2.0).abs() < 1e-12);
        assert_eq!(q.cpu_hz, n.cpu_hz);
    }

    #[test]
    fn reconfigure_replaces_shares() {
        let mut h = hv();
        let vm = h.create_vm(VmConfig::new(0.5, 0.5).unwrap()).unwrap();
        h.reconfigure(vm, VmConfig::new(0.8, 0.6).unwrap()).unwrap();
        let p = h.perf(vm).unwrap();
        assert!((p.cpu_hz - 0.8 * h.machine().total_hz()).abs() < 1.0);
    }

    #[test]
    fn reconfigure_checks_remaining_capacity() {
        let mut h = hv();
        let a = h.create_vm(VmConfig::new(0.5, 0.5).unwrap()).unwrap();
        h.create_vm(VmConfig::new(0.5, 0.5).unwrap()).unwrap();
        assert!(h.reconfigure(a, VmConfig::new(0.6, 0.5).unwrap()).is_err());
    }

    #[test]
    fn unknown_handle_is_reported() {
        let h = hv();
        assert_eq!(h.perf(VmHandle(3)).unwrap_err(), VmmError::UnknownVm(3));
    }
}
