#![warn(missing_docs)]

//! # vda-vmm
//!
//! A virtual machine monitor (hypervisor) simulator standing in for the
//! Xen 3.0.2 testbed of Soror et al. The advisor under reproduction
//! controls exactly two mechanisms that Xen exposes:
//!
//! 1. **CPU shares** — Xen's credit scheduler gives a VM a fraction of
//!    total CPU capacity; CPU-bound work completes in time inversely
//!    proportional to that fraction.
//! 2. **Memory grants** — a fixed number of megabytes visible to the
//!    guest, which the database's tuning policy divides between buffer
//!    pool, sort/work memory, and OS page cache.
//!
//! The paper also stresses that Xen provides *no* I/O performance
//! isolation, and deliberately runs an extra I/O-heavy VM so disk
//! contention is present in every experiment. [`Hypervisor`] models
//! that with a disk-contention multiplier applied to every VM's I/O
//! service times.
//!
//! [`VmPerf`] is the resulting performance view of one VM: effective
//! CPU frequency, per-page sequential/random I/O times, and memory.
//! The simulated DBMS executor charges plan work against a `VmPerf`,
//! and the calibration micro-benchmarks ([`microbench`]) read their
//! timings from the same model, so calibration is honest: it measures
//! the very numbers the executor will use.

pub mod hypervisor;
pub mod machine;
pub mod microbench;
pub mod perf;

pub use hypervisor::{Hypervisor, VmConfig, VmHandle, VmmError};
pub use machine::{DiskSpec, PhysicalMachine};
pub use microbench::{cpu_speed_bench, random_read_bench, sequential_read_bench};
pub use perf::VmPerf;
