//! Physical machine description.

use serde::{Deserialize, Serialize};

/// Rotational-disk performance specification.
///
/// The 2008 testbed used direct-attached SCSI storage; the defaults
/// below are typical for that class of device and, more importantly,
/// put the sequential/random cost ratio near the PostgreSQL default
/// `random_page_cost = 4`, which the calibration experiments (Fig. 7)
/// expect to recover.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Sequential throughput in MB/s.
    pub seq_mb_per_s: f64,
    /// Random I/O operations per second (seek + rotational latency
    /// dominated).
    pub rand_iops: f64,
}

impl DiskSpec {
    /// Seconds to read one page of `page_kb` KiB sequentially.
    pub fn seq_page_secs(&self, page_kb: f64) -> f64 {
        (page_kb / 1024.0) / self.seq_mb_per_s
    }

    /// Seconds to read one page of `page_kb` KiB at a random offset
    /// (one seek plus the transfer).
    pub fn rand_page_secs(&self, page_kb: f64) -> f64 {
        1.0 / self.rand_iops + self.seq_page_secs(page_kb)
    }
}

/// The consolidated physical server hosting all virtual machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicalMachine {
    /// Number of physical cores.
    pub cores: u32,
    /// Clock frequency per core, GHz.
    pub core_ghz: f64,
    /// Total physical memory, MB.
    pub memory_mb: f64,
    /// Shared disk subsystem.
    pub disk: DiskSpec,
    /// Database page size in KiB (both simulated engines use 8 KiB,
    /// like the PostgreSQL setup in the paper).
    pub page_kb: f64,
}

impl PhysicalMachine {
    /// The slice of the disk subsystem a VM holding a `share` of the
    /// machine's disk bandwidth sees: `share` of the sequential
    /// throughput and `share` of the random IOPS. This is what makes
    /// disk bandwidth an *allocatable* resource axis — a
    /// [`VmConfig::disk_share`](crate::VmConfig::disk_share) of `d`
    /// prices every page read `1/d` times slower, exactly like a CPU
    /// share prices cycles.
    pub fn disk_slice(&self, share: f64) -> DiskSpec {
        assert!(
            share > 0.0 && share.is_finite(),
            "disk share must be positive"
        );
        DiskSpec {
            seq_mb_per_s: self.disk.seq_mb_per_s * share,
            rand_iops: self.disk.rand_iops * share,
        }
    }

    /// The paper's testbed: two 2.2 GHz dual-core Opteron 275 packages
    /// (4 cores total) and 8 GB of memory, with 2008-class disks.
    pub fn paper_testbed() -> Self {
        PhysicalMachine {
            cores: 4,
            core_ghz: 2.2,
            memory_mb: 8192.0,
            disk: DiskSpec {
                seq_mb_per_s: 72.0,
                rand_iops: 130.0,
            },
            page_kb: 8.0,
        }
    }

    /// Total CPU capacity in cycles per second.
    pub fn total_hz(&self) -> f64 {
        self.cores as f64 * self.core_ghz * 1e9
    }

    /// A 64-bit hardware fingerprint: equal for physically identical
    /// machines, different whenever any spec field differs beyond
    /// measurement dust. The fleet layer keys per-machine-class state
    /// (calibrations, memoized inner solves) by this, so a calibrated
    /// model fit on one hardware class is never silently reused on
    /// another.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the quantized spec fields (1e-6 relative
        // resolution — far finer than any spec anyone writes down).
        // Mirrors `vda_simdb::hash::Fnv64`, which this crate cannot
        // depend on (vmm sits below simdb in the crate graph).
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.cores as u64);
        mix((self.core_ghz * 1e6).round() as u64);
        mix((self.memory_mb * 1e3).round() as u64);
        mix((self.disk.seq_mb_per_s * 1e6).round() as u64);
        mix((self.disk.rand_iops * 1e3).round() as u64);
        mix((self.page_kb * 1e3).round() as u64);
        h
    }
}

impl Default for PhysicalMachine {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_capacity() {
        let m = PhysicalMachine::paper_testbed();
        assert_eq!(m.total_hz(), 4.0 * 2.2e9);
        assert_eq!(m.memory_mb, 8192.0);
    }

    #[test]
    fn fingerprint_separates_hardware_classes() {
        let base = PhysicalMachine::paper_testbed();
        assert_eq!(
            base.fingerprint(),
            PhysicalMachine::paper_testbed().fingerprint()
        );
        let mut faster = base;
        faster.core_ghz *= 2.0;
        assert_ne!(base.fingerprint(), faster.fingerprint());
        let mut bigger = base;
        bigger.memory_mb *= 2.0;
        assert_ne!(base.fingerprint(), bigger.fingerprint());
        assert_ne!(faster.fingerprint(), bigger.fingerprint());
    }

    #[test]
    fn disk_times_are_sane() {
        let d = DiskSpec {
            seq_mb_per_s: 72.0,
            rand_iops: 130.0,
        };
        let seq = d.seq_page_secs(8.0);
        let rand = d.rand_page_secs(8.0);
        // An 8 KiB sequential page read should take ~0.1 ms; a random
        // one ~7.8 ms; the ratio is what random_page_cost calibrates.
        assert!(seq > 0.0 && seq < 0.001, "{seq}");
        assert!(rand > seq, "{rand} vs {seq}");
        assert!((rand / seq) > 10.0, "ratio {}", rand / seq);
    }
}
