//! Calibration micro-benchmarks (§4.3 of the paper).
//!
//! The paper calibrates I/O-related optimizer parameters with small
//! stand-alone programs: a sequential reader that streams 8 KB blocks
//! (PostgreSQL's renormalization factor), a random reader
//! (`random_page_cost`, DB2 `overhead`/`transfer_rate`), and a CPU
//! speed loop (DB2 `cpuspeed`). Here those programs read their
//! timings from the same [`VmPerf`] model the executor charges against,
//! so a calibrated advisor describes exactly the environment the
//! workloads will run in — including the I/O-contention VM.

use crate::perf::VmPerf;

/// Average seconds to sequentially read one database page, measured by
/// streaming `blocks` pages. (The block count only matters for realism
/// of the measurement cost; the model is deterministic.)
pub fn sequential_read_bench(perf: &VmPerf, blocks: u64) -> f64 {
    debug_assert!(blocks > 0);
    perf.seq_io_secs(blocks as f64) / blocks as f64
}

/// Average seconds to read one database page at a random offset.
pub fn random_read_bench(perf: &VmPerf, blocks: u64) -> f64 {
    debug_assert!(blocks > 0);
    perf.rand_io_secs(blocks as f64) / blocks as f64
}

/// Average milliseconds to execute one abstract "instruction", measured
/// by timing a loop of `instructions` instructions, each costing
/// `cycles_per_instruction` cycles. This is the DB2 `cpuspeed`
/// measurement program.
pub fn cpu_speed_bench(perf: &VmPerf, instructions: u64, cycles_per_instruction: f64) -> f64 {
    debug_assert!(instructions > 0);
    let total_secs = perf.cpu_secs(instructions as f64 * cycles_per_instruction);
    total_secs * 1e3 / instructions as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervisor::{Hypervisor, VmConfig};
    use crate::machine::PhysicalMachine;

    fn perf(cpu: f64, mem: f64) -> VmPerf {
        let h = Hypervisor::new(PhysicalMachine::paper_testbed());
        h.perf_for(VmConfig::new(cpu, mem).unwrap())
    }

    #[test]
    fn sequential_bench_reports_page_time() {
        let p = perf(0.5, 0.5);
        let t = sequential_read_bench(&p, 10_000);
        assert!((t - p.seq_page_secs).abs() < 1e-15);
    }

    #[test]
    fn random_bench_reports_page_time() {
        let p = perf(0.5, 0.5);
        let t = random_read_bench(&p, 1_000);
        assert!((t - p.rand_page_secs).abs() < 1e-15);
    }

    #[test]
    fn cpu_bench_scales_inversely_with_share() {
        let lo = cpu_speed_bench(&perf(0.25, 0.5), 1_000_000, 4.0);
        let hi = cpu_speed_bench(&perf(0.75, 0.5), 1_000_000, 4.0);
        assert!((lo / hi - 3.0).abs() < 1e-9, "{lo} vs {hi}");
    }

    #[test]
    fn io_benches_independent_of_cpu_share() {
        let a = random_read_bench(&perf(0.2, 0.5), 100);
        let b = random_read_bench(&perf(0.9, 0.5), 100);
        assert_eq!(a, b);
    }
}
