//! The performance view of one configured virtual machine.

use serde::{Deserialize, Serialize};

/// Effective performance characteristics of a VM as configured by the
/// hypervisor: everything the simulated DBMS executor needs to turn
/// plan work (cycles, page reads) into wall-clock seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmPerf {
    /// Effective CPU capacity in cycles per second
    /// (= machine capacity × CPU share).
    pub cpu_hz: f64,
    /// Seconds per sequential page read, contention included.
    pub seq_page_secs: f64,
    /// Seconds per random page read, contention included.
    pub rand_page_secs: f64,
    /// Memory granted to the guest, MB.
    pub memory_mb: f64,
    /// Database page size in KiB (propagated from the machine).
    pub page_kb: f64,
}

impl VmPerf {
    /// Seconds to execute `cycles` CPU cycles on this VM.
    #[inline]
    pub fn cpu_secs(&self, cycles: f64) -> f64 {
        cycles / self.cpu_hz
    }

    /// Seconds to read `pages` sequential pages.
    #[inline]
    pub fn seq_io_secs(&self, pages: f64) -> f64 {
        pages * self.seq_page_secs
    }

    /// Seconds to read `pages` random pages.
    #[inline]
    pub fn rand_io_secs(&self, pages: f64) -> f64 {
        pages * self.rand_page_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_helpers() {
        let p = VmPerf {
            cpu_hz: 1e9,
            seq_page_secs: 1e-4,
            rand_page_secs: 8e-3,
            memory_mb: 512.0,
            page_kb: 8.0,
        };
        assert!((p.cpu_secs(2e9) - 2.0).abs() < 1e-12);
        assert!((p.seq_io_secs(10.0) - 1e-3).abs() < 1e-12);
        assert!((p.rand_io_secs(10.0) - 0.08).abs() < 1e-12);
    }
}
