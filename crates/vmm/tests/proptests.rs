//! Property-based tests for the hypervisor model.

use proptest::prelude::*;
use vda_vmm::{
    cpu_speed_bench, random_read_bench, sequential_read_bench, Hypervisor, PhysicalMachine,
    VmConfig,
};

fn share() -> impl Strategy<Value = f64> {
    0.01f64..=1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CPU capacity is exactly linear in the CPU share.
    #[test]
    fn cpu_linear_in_share(s1 in share(), s2 in share()) {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let p1 = hv.perf_for(VmConfig::new(s1, 0.5).expect("valid"));
        let p2 = hv.perf_for(VmConfig::new(s2, 0.5).expect("valid"));
        prop_assert!((p1.cpu_hz / p2.cpu_hz - s1 / s2).abs() < 1e-9);
    }

    /// Memory grants are exactly linear in the memory share and I/O
    /// times are independent of both shares.
    #[test]
    fn memory_linear_io_invariant(c1 in share(), m1 in share(), c2 in share(), m2 in share()) {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let p1 = hv.perf_for(VmConfig::new(c1, m1).expect("valid"));
        let p2 = hv.perf_for(VmConfig::new(c2, m2).expect("valid"));
        prop_assert!((p1.memory_mb / p2.memory_mb - m1 / m2).abs() < 1e-9);
        prop_assert_eq!(p1.seq_page_secs, p2.seq_page_secs);
        prop_assert_eq!(p1.rand_page_secs, p2.rand_page_secs);
    }

    /// Admission control: any sequence of VM creations keeps total
    /// committed shares at or below 1 per isolated resource.
    #[test]
    fn admission_never_oversubscribes(shares in proptest::collection::vec((share(), share()), 1..8)) {
        let mut hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        for (c, m) in shares {
            let _ = hv.create_vm(VmConfig::new(c, m).expect("valid"));
            let (tc, tm, _) = hv.committed_shares();
            prop_assert!(tc <= 1.0 + 1e-9, "cpu oversubscribed: {tc}");
            prop_assert!(tm <= 1.0 + 1e-9, "memory oversubscribed: {tm}");
        }
    }

    /// Disk isolation: with admission enabled, the committed disk
    /// shares also stay at or below 1, and the perf view scales I/O
    /// times by exactly 1/share.
    #[test]
    fn disk_isolation_never_oversubscribes(shares in proptest::collection::vec((share(), share()), 1..8)) {
        let mut hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        hv.set_disk_isolation(true);
        for (c, d) in shares {
            let cfg = VmConfig::with_disk(c, 0.1, d).expect("valid");
            let scaled = hv.perf_for(cfg);
            let full = hv.perf_for(VmConfig::new(c, 0.1).expect("valid"));
            prop_assert!((scaled.seq_page_secs / full.seq_page_secs - 1.0 / d).abs() < 1e-9);
            let _ = hv.create_vm(cfg);
            let (_, _, td) = hv.committed_shares();
            prop_assert!(td <= 1.0 + 1e-9, "disk oversubscribed: {td}");
        }
    }

    /// Micro-benchmarks read the same timings the perf model exposes.
    #[test]
    fn microbenches_match_model(c in share(), m in share(), blocks in 1u64..100_000) {
        let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
        let p = hv.perf_for(VmConfig::new(c, m).expect("valid"));
        prop_assert!((sequential_read_bench(&p, blocks) - p.seq_page_secs).abs() < 1e-12);
        prop_assert!((random_read_bench(&p, blocks) - p.rand_page_secs).abs() < 1e-12);
        // cpuspeed in ms/instr at one cycle per instruction.
        let ms = cpu_speed_bench(&p, 1_000_000, 1.0);
        prop_assert!((ms - 1e3 / p.cpu_hz).abs() / ms < 1e-9);
    }

    /// Contention scales both I/O times by the same factor and leaves
    /// CPU untouched.
    #[test]
    fn contention_uniform_on_io(c in share(), factor in 1.0f64..5.0) {
        let quiet = Hypervisor::with_io_contention(PhysicalMachine::paper_testbed(), 1.0);
        let noisy = Hypervisor::with_io_contention(PhysicalMachine::paper_testbed(), factor);
        let cfg = VmConfig::new(c, 0.5).expect("valid");
        let q = quiet.perf_for(cfg);
        let n = noisy.perf_for(cfg);
        prop_assert!((n.seq_page_secs / q.seq_page_secs - factor).abs() < 1e-9);
        prop_assert!((n.rand_page_secs / q.rand_page_secs - factor).abs() < 1e-9);
        prop_assert_eq!(q.cpu_hz, n.cpu_hz);
    }
}
