#![warn(missing_docs)]

//! # vda-workloads
//!
//! Workload generators for the virtualization design advisor,
//! reproducing the benchmark setup of Soror et al. §7.1:
//!
//! * [`tpch`] — a TPC-H-like decision-support schema (catalog builder
//!   parameterized by scale factor) and the 22 query templates,
//!   simplified syntactically but shaped so the paper's
//!   classifications hold: Q18 is among the most CPU-intensive
//!   queries, Q21 among the least; Q7 is memory-sensitive, Q16 is
//!   not; Q17 is I/O-intensive; Q4 and Q18 lean on big sorts (the DB2
//!   sort-heap experiments).
//! * [`tpcc`] — a TPC-C-like OLTP schema and the five transaction
//!   types, with warehouse/client scaling. OLTP statements carry a
//!   concurrency level that drives simulated lock contention.
//! * [`workload`] — the [`Workload`] type of §3: a set of SQL
//!   statements with execution counts over a common monitoring
//!   interval.
//! * [`units`] — the paper's workload units: `C`/`I` (CPU-intensive /
//!   non-intensive, §7.3), `B`/`D` (memory-sensitive / insensitive,
//!   §7.4), with automatic count balancing so different units have
//!   equal cost at full resource allocation.
//! * [`random`] — seeded random workload mixes for the §7.6–7.9
//!   experiments.

pub mod random;
pub mod tpcc;
pub mod tpch;
pub mod units;
pub mod workload;

pub use units::{balanced_pair, WorkloadUnit};
pub use workload::{StatementKind, Workload, WorkloadStatement};
