//! Seeded random workload construction for the §7.6–7.9 experiments.

use crate::tpch;
use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic workload RNG.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// §7.6 first experiment: each workload is a random mix of 10–20
/// units, where a unit is either one Q17 instance or `q18mod_copies`
/// instances of the modified Q18 (the count making the two unit kinds
/// equal at 100 % CPU — 66 in the paper's setup).
pub fn tpch_random_workload(rng: &mut StdRng, index: usize, q18mod_copies: f64) -> Workload {
    let units = rng.random_range(10..=20);
    let mut w = Workload::new(format!("rand-tpch-{index}"));
    let q17 = tpch::query(17);
    let q18m = tpch::query18_modified();
    for _ in 0..units {
        if rng.random_bool(0.5) {
            w.push(crate::workload::WorkloadStatement::dss(q17.clone(), 1.0));
        } else {
            w.push(crate::workload::WorkloadStatement::dss(
                q18m.clone(),
                q18mod_copies,
            ));
        }
    }
    w
}

/// §7.6 second/third experiments: a DSS workload of up to `max_queries`
/// randomly chosen TPC-H queries.
///
/// Queries whose simulated runtimes are extreme outliers would let one
/// statement dominate a whole random mix, so the draw is over the full
/// 22-query set exactly as in the paper.
pub fn random_tpch_queries(rng: &mut StdRng, index: usize, max_queries: usize) -> Workload {
    let n = rng.random_range(1..=max_queries.max(1));
    let mut w = Workload::new(format!("rand-dss-{index}"));
    for _ in 0..n {
        let q = rng.random_range(1..=22);
        w.push(crate::workload::WorkloadStatement::dss(tpch::query(q), 1.0));
    }
    w
}

/// §7.9: workloads composed of a sort-heavy unit (Q4 + Q18, whose
/// sort-spill behaviour DB2's optimizer underestimates) and a neutral
/// unit (a mix of Q8, Q16, Q20), 10–20 units per workload. Each
/// workload draws its own sort-heavy bias so the consolidated set
/// spans memory appetites (some workloads are mostly sort-heavy,
/// others mostly neutral — the situation where memory misallocation
/// matters).
pub fn sort_sensitive_workload(rng: &mut StdRng, index: usize) -> Workload {
    let units = rng.random_range(10..=20);
    let bias = rng.random_range(0.1..0.9);
    let mut w = Workload::new(format!("rand-sort-{index}"));
    for _ in 0..units {
        if rng.random_bool(bias) {
            w.push(crate::workload::WorkloadStatement::dss(tpch::query(4), 1.0));
            w.push(crate::workload::WorkloadStatement::dss(
                tpch::query(18),
                1.0,
            ));
        } else {
            w.push(crate::workload::WorkloadStatement::dss(tpch::query(8), 1.0));
            w.push(crate::workload::WorkloadStatement::dss(
                tpch::query(16),
                1.0,
            ));
            w.push(crate::workload::WorkloadStatement::dss(
                tpch::query(20),
                1.0,
            ));
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = tpch_random_workload(&mut rng(7), 0, 66.0);
        let b = tpch_random_workload(&mut rng(7), 0, 66.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_tpch_queries(&mut rng(1), 0, 40);
        let b = random_tpch_queries(&mut rng(2), 0, 40);
        assert_ne!(a, b);
    }

    #[test]
    fn unit_counts_in_range() {
        let q17 = tpch::query(17);
        for seed in 0..20 {
            let w = tpch_random_workload(&mut rng(seed), 0, 66.0);
            let total_units: f64 = w
                .statements
                .iter()
                .map(|s| {
                    if s.sql == q17 {
                        s.count
                    } else {
                        s.count / 66.0
                    }
                })
                .sum();
            assert!(
                (10.0..=20.0).contains(&total_units.round()),
                "units {total_units}"
            );
        }
    }

    #[test]
    fn sort_workload_contains_anchor_queries() {
        let w = sort_sensitive_workload(&mut rng(42), 0);
        let has_q4_or_q8 = w
            .statements
            .iter()
            .any(|s| s.sql == tpch::query(4) || s.sql == tpch::query(8));
        assert!(has_q4_or_q8);
    }
}
