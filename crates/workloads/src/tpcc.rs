//! TPC-C-like OLTP schema and transactions.
//!
//! The paper runs TPC-C at 10 and 100 warehouses (tpcc-uva for
//! PostgreSQL, an expert-tuned implementation for DB2) with each
//! workload "accessing between 2 and 10 warehouses with 5 to 10
//! clients accessing each warehouse" (§7.6). This module reproduces
//! that: a warehouse-scaled catalog and the five transaction types
//! expressed in the SQL subset, with the standard mix.
//!
//! OLTP statements carry a concurrency level: the simulated executor
//! charges lock-contention CPU that grows with concurrent clients —
//! cost that the query optimizers do *not* model, which is exactly why
//! the paper's optimizers underestimate TPC-C's CPU needs (§7.8).

use crate::workload::{Workload, WorkloadStatement};
use vda_simdb::catalog::{table, Catalog, IndexDef};

/// Build the TPC-C catalog for `warehouses` warehouses
/// (10 warehouses ≈ 1 GB, 100 ≈ 10 GB, matching §7.1).
pub fn catalog(warehouses: u32) -> Catalog {
    assert!(warehouses > 0, "at least one warehouse");
    let w = warehouses as f64;
    let mut c = Catalog::new();

    c.add_table(table(
        "warehouse",
        w,
        90.0,
        &[("w_id", w, 4.0), ("w_ytd", w, 8.0), ("w_tax", 10.0, 8.0)],
    ));
    c.add_table(table(
        "district",
        10.0 * w,
        95.0,
        &[
            ("d_id", 10.0, 4.0),
            ("d_w_id", w, 4.0),
            ("d_ytd", 10.0 * w, 8.0),
            ("d_next_o_id", 3_000.0, 4.0),
        ],
    ));
    c.add_table(table(
        "customer",
        30_000.0 * w,
        655.0,
        &[
            ("c_id", 3_000.0, 4.0),
            ("c_d_id", 10.0, 4.0),
            ("c_w_id", w, 4.0),
            ("c_balance", 20_000.0 * w, 8.0),
            ("c_discount", 5_000.0, 8.0),
            ("c_last", 1_000.0, 16.0),
            ("c_data", 30_000.0 * w, 500.0),
        ],
    ));
    c.add_table(table(
        "item",
        100_000.0,
        82.0,
        &[
            ("i_id", 100_000.0, 4.0),
            ("i_price", 10_000.0, 8.0),
            ("i_name", 100_000.0, 24.0),
        ],
    ));
    c.add_table(table(
        "stock",
        100_000.0 * w,
        306.0,
        &[
            ("s_i_id", 100_000.0, 4.0),
            ("s_w_id", w, 4.0),
            ("s_quantity", 100.0, 4.0),
            ("s_ytd", 50_000.0 * w, 8.0),
        ],
    ));
    c.add_table(table(
        "orders",
        30_000.0 * w,
        36.0,
        &[
            ("o_id", 3_000.0 * w, 4.0),
            ("o_d_id", 10.0, 4.0),
            ("o_w_id", w, 4.0),
            ("o_c_id", 3_000.0, 4.0),
            ("o_carrier_id", 10.0, 4.0),
        ],
    ));
    c.add_table(table(
        "new_order",
        9_000.0 * w,
        12.0,
        &[
            ("no_o_id", 3_000.0 * w, 4.0),
            ("no_d_id", 10.0, 4.0),
            ("no_w_id", w, 4.0),
        ],
    ));
    c.add_table(table(
        "order_line",
        300_000.0 * w,
        54.0,
        &[
            ("ol_o_id", 3_000.0 * w, 4.0),
            ("ol_d_id", 10.0, 4.0),
            ("ol_w_id", w, 4.0),
            ("ol_i_id", 100_000.0, 4.0),
            ("ol_quantity", 10.0, 4.0),
            ("ol_amount", 100_000.0, 8.0),
        ],
    ));
    c.add_table(table(
        "history",
        30_000.0 * w,
        46.0,
        &[("h_c_id", 3_000.0, 4.0), ("h_amount", 10_000.0, 8.0)],
    ));

    for (name, tbl, col) in [
        ("warehouse_pk", "warehouse", "w_id"),
        ("district_pk", "district", "d_w_id"),
        ("customer_pk", "customer", "c_w_id"),
        ("customer_last", "customer", "c_last"),
        ("item_pk", "item", "i_id"),
        ("stock_pk", "stock", "s_i_id"),
        ("orders_pk", "orders", "o_w_id"),
        ("orders_cust", "orders", "o_c_id"),
        ("new_order_pk", "new_order", "no_w_id"),
        ("order_line_pk", "order_line", "ol_o_id"),
    ] {
        c.add_index(IndexDef {
            name: name.into(),
            table: tbl.into(),
            column: col.into(),
        })
        .expect("static index definitions are valid");
    }
    c
}

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transaction {
    /// ~45 % of the mix; inserts an order with ~10 lines.
    NewOrder,
    /// ~43 %; updates balances along warehouse/district/customer.
    Payment,
    /// ~4 %; read-only status check.
    OrderStatus,
    /// ~4 %; batch delivery of pending orders.
    Delivery,
    /// ~4 %; read-only stock threshold scan.
    StockLevel,
}

impl Transaction {
    /// The standard TPC-C mix weight of this transaction.
    pub fn mix_weight(self) -> f64 {
        match self {
            Transaction::NewOrder => 0.45,
            Transaction::Payment => 0.43,
            Transaction::OrderStatus => 0.04,
            Transaction::Delivery => 0.04,
            Transaction::StockLevel => 0.04,
        }
    }

    /// The statements one execution of this transaction issues, with
    /// per-transaction multiplicities.
    pub fn statements(self) -> Vec<(String, f64)> {
        match self {
            Transaction::NewOrder => vec![
                ("SELECT c_discount FROM customer WHERE c_w_id = 1 AND c_d_id = 3 AND c_id = 42".into(), 1.0),
                ("SELECT d_next_o_id FROM district WHERE d_w_id = 1 AND d_id = 3".into(), 1.0),
                ("UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = 1 AND d_id = 3".into(), 1.0),
                ("SELECT i_price, i_name FROM item WHERE i_id = 777".into(), 10.0),
                ("SELECT s_quantity FROM stock WHERE s_i_id = 777 AND s_w_id = 1".into(), 10.0),
                ("UPDATE stock SET s_quantity = s_quantity - 5, s_ytd = s_ytd + 5 WHERE s_i_id = 777 AND s_w_id = 1".into(), 10.0),
                ("INSERT INTO orders VALUES (3001, 3, 1, 42, 0)".into(), 1.0),
                ("INSERT INTO new_order VALUES (3001, 3, 1)".into(), 1.0),
                ("INSERT INTO order_line VALUES (3001, 3, 1, 777, 5, 25.0), (3001, 3, 1, 778, 1, 5.0), (3001, 3, 1, 779, 2, 10.0), (3001, 3, 1, 780, 4, 20.0), (3001, 3, 1, 781, 3, 15.0), (3001, 3, 1, 782, 5, 25.0), (3001, 3, 1, 783, 1, 5.0), (3001, 3, 1, 784, 2, 10.0), (3001, 3, 1, 785, 4, 20.0), (3001, 3, 1, 786, 3, 15.0)".into(), 1.0),
            ],
            Transaction::Payment => vec![
                ("UPDATE warehouse SET w_ytd = w_ytd + 100 WHERE w_id = 1".into(), 1.0),
                ("UPDATE district SET d_ytd = d_ytd + 100 WHERE d_w_id = 1 AND d_id = 3".into(), 1.0),
                ("SELECT c_balance, c_last FROM customer WHERE c_w_id = 1 AND c_d_id = 3 AND c_id = 42".into(), 1.0),
                ("UPDATE customer SET c_balance = c_balance - 100 WHERE c_w_id = 1 AND c_d_id = 3 AND c_id = 42".into(), 1.0),
                ("INSERT INTO history VALUES (42, 100.0)".into(), 1.0),
            ],
            Transaction::OrderStatus => vec![
                ("SELECT c_balance FROM customer WHERE c_w_id = 1 AND c_d_id = 3 AND c_last = 'BARBARBAR'".into(), 1.0),
                ("SELECT o_id, o_carrier_id FROM orders WHERE o_w_id = 1 AND o_d_id = 3 AND o_c_id = 42 ORDER BY o_id DESC LIMIT 1".into(), 1.0),
                ("SELECT ol_i_id, ol_quantity, ol_amount FROM order_line WHERE ol_o_id = 2987 AND ol_d_id = 3 AND ol_w_id = 1".into(), 1.0),
            ],
            Transaction::Delivery => vec![
                ("SELECT no_o_id FROM new_order WHERE no_w_id = 1 AND no_d_id = 3 ORDER BY no_o_id LIMIT 1".into(), 10.0),
                ("DELETE FROM new_order WHERE no_w_id = 1 AND no_d_id = 3 AND no_o_id = 2101".into(), 10.0),
                ("UPDATE orders SET o_carrier_id = 7 WHERE o_w_id = 1 AND o_d_id = 3 AND o_id = 2101".into(), 10.0),
                ("SELECT sum(ol_amount) FROM order_line WHERE ol_w_id = 1 AND ol_d_id = 3 AND ol_o_id = 2101".into(), 10.0),
                ("UPDATE customer SET c_balance = c_balance + 300 WHERE c_w_id = 1 AND c_d_id = 3 AND c_id = 42".into(), 10.0),
            ],
            Transaction::StockLevel => vec![
                ("SELECT d_next_o_id FROM district WHERE d_w_id = 1 AND d_id = 3".into(), 1.0),
                ("SELECT count(*) FROM order_line ol, stock s WHERE ol.ol_w_id = 1 AND ol.ol_d_id = 3 AND ol.ol_o_id > 2980 /*+ sel 0.00007 */ AND s.s_i_id = ol.ol_i_id AND s.s_w_id = 1 AND s.s_quantity < 15 /*+ sel 0.11 */".into(), 1.0),
            ],
        }
    }
}

/// Build a TPC-C workload: `warehouses_accessed` warehouses, each hit
/// by `clients_per_warehouse` clients, with `txns_per_client` of the
/// standard mix executed per client during the monitoring interval.
pub fn workload(
    warehouses_accessed: u32,
    clients_per_warehouse: u32,
    txns_per_client: f64,
) -> Workload {
    let clients = (warehouses_accessed * clients_per_warehouse) as f64;
    let total_txns = clients * txns_per_client;
    let mut w = Workload::new(format!(
        "tpcc-{warehouses_accessed}wh-{clients_per_warehouse}cl"
    ));
    for txn in [
        Transaction::NewOrder,
        Transaction::Payment,
        Transaction::OrderStatus,
        Transaction::Delivery,
        Transaction::StockLevel,
    ] {
        let txn_count = total_txns * txn.mix_weight();
        for (sql, per_txn) in txn.statements() {
            w.push(WorkloadStatement::oltp(sql, txn_count * per_txn, clients));
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use vda_simdb::bind::bind_statement;

    #[test]
    fn catalog_scales_with_warehouses() {
        let c10 = catalog(10);
        let c100 = catalog(100);
        assert_eq!(c10.table("stock").unwrap().rows, 1_000_000.0);
        assert_eq!(c100.table("stock").unwrap().rows, 10_000_000.0);
        // Item does not scale with warehouses.
        assert_eq!(c10.table("item").unwrap().rows, 100_000.0);
        assert_eq!(c100.table("item").unwrap().rows, 100_000.0);
    }

    #[test]
    fn all_transaction_statements_bind() {
        let c = catalog(10);
        for txn in [
            Transaction::NewOrder,
            Transaction::Payment,
            Transaction::OrderStatus,
            Transaction::Delivery,
            Transaction::StockLevel,
        ] {
            for (sql, _) in txn.statements() {
                bind_statement(&sql, &c)
                    .unwrap_or_else(|e| panic!("{txn:?} statement failed: {e}\n{sql}"));
            }
        }
    }

    #[test]
    fn workload_mix_weights_sum_to_one() {
        let total: f64 = [
            Transaction::NewOrder,
            Transaction::Payment,
            Transaction::OrderStatus,
            Transaction::Delivery,
            Transaction::StockLevel,
        ]
        .iter()
        .map(|t| t.mix_weight())
        .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn workload_has_writes_and_concurrency() {
        let w = workload(4, 5, 10.0);
        assert!(w.has_oltp());
        assert!(w.statements.iter().all(|s| s.concurrency == 20.0));
        assert!(w.total_statements() > 100.0);
    }

    #[test]
    fn new_order_writes_bind_as_writes() {
        let c = catalog(10);
        let stmts = Transaction::NewOrder.statements();
        let insert = &stmts.last().unwrap().0;
        let b = bind_statement(insert, &c).unwrap();
        assert!(b.is_write());
        assert_eq!(b.write.as_ref().unwrap().rows, 10.0);
    }
}
