//! TPC-H-like decision-support schema and query templates.
//!
//! The catalog mirrors the TPC-H row counts and widths at a given scale
//! factor (SF1 ≈ 1 GB of raw data, SF10 ≈ 10 GB, matching the paper's
//! two database sizes). The 22 query templates are syntactically
//! simplified — the simulated engines parse a SQL subset — but each
//! preserves the *resource profile* the paper relies on:
//!
//! | Query | Profile | Used by |
//! |-------|---------|---------|
//! | Q18   | most CPU-intensive (big joins, massive grouping) | C unit, §7.3; sort-heavy, §7.9 |
//! | Q21   | least CPU-intensive (repeated full scans, light CPU) | I unit, §7.3 |
//! | Q7    | memory-sensitive (huge spilling sort) | B unit, §7.4 |
//! | Q16   | memory-insensitive (small group table) | D unit, §7.4 |
//! | Q17   | I/O-intensive (index-probe storm) | motivating example |
//! | Q4    | sort-heavy (million-group aggregate) | §7.9 |
//!
//! Selectivity hints (`/*+ sel p */`) pin predicate selectivities where
//! the System-R heuristics would misshape a profile; the values match
//! the actual TPC-H specification selectivities.

use crate::workload::{Workload, WorkloadStatement};
use vda_simdb::catalog::{table, Catalog, IndexDef};

/// Build the TPC-H catalog at `sf` (scale factor; 1.0 ≈ 1 GB raw).
pub fn catalog(sf: f64) -> Catalog {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut c = Catalog::new();

    c.add_table(table(
        "region",
        5.0,
        120.0,
        &[("r_regionkey", 5.0, 4.0), ("r_name", 5.0, 12.0)],
    ));
    c.add_table(table(
        "nation",
        25.0,
        110.0,
        &[
            ("n_nationkey", 25.0, 4.0),
            ("n_name", 25.0, 12.0),
            ("n_regionkey", 5.0, 4.0),
        ],
    ));
    c.add_table(table(
        "supplier",
        10_000.0 * sf,
        160.0,
        &[
            ("s_suppkey", 10_000.0 * sf, 4.0),
            ("s_name", 10_000.0 * sf, 18.0),
            ("s_nationkey", 25.0, 4.0),
            ("s_acctbal", 9_000.0 * sf, 8.0),
        ],
    ));
    c.add_table(table(
        "customer",
        150_000.0 * sf,
        180.0,
        &[
            ("c_custkey", 150_000.0 * sf, 4.0),
            ("c_name", 150_000.0 * sf, 18.0),
            ("c_nationkey", 25.0, 4.0),
            ("c_mktsegment", 5.0, 10.0),
            ("c_acctbal", 140_000.0 * sf, 8.0),
            ("c_phone", 150_000.0 * sf, 15.0),
        ],
    ));
    c.add_table(table(
        "part",
        200_000.0 * sf,
        155.0,
        &[
            ("p_partkey", 200_000.0 * sf, 4.0),
            ("p_name", 200_000.0 * sf, 32.0),
            ("p_mfgr", 5.0, 25.0),
            ("p_brand", 25.0, 10.0),
            ("p_type", 150.0, 20.0),
            ("p_size", 50.0, 4.0),
            ("p_container", 40.0, 10.0),
            ("p_retailprice", 100_000.0 * sf, 8.0),
        ],
    ));
    c.add_table(table(
        "partsupp",
        800_000.0 * sf,
        145.0,
        &[
            ("ps_partkey", 200_000.0 * sf, 4.0),
            ("ps_suppkey", 10_000.0 * sf, 4.0),
            ("ps_availqty", 10_000.0, 4.0),
            ("ps_supplycost", 100_000.0, 8.0),
        ],
    ));
    c.add_table(table(
        "orders",
        1_500_000.0 * sf,
        120.0,
        &[
            ("o_orderkey", 1_500_000.0 * sf, 4.0),
            ("o_custkey", 100_000.0 * sf, 4.0),
            ("o_orderstatus", 3.0, 1.0),
            ("o_totalprice", 1_400_000.0 * sf, 8.0),
            ("o_orderdate", 2_406.0, 8.0),
            ("o_orderpriority", 5.0, 15.0),
            ("o_shippriority", 1.0, 4.0),
        ],
    ));
    c.add_table(table(
        "lineitem",
        6_000_000.0 * sf,
        140.0,
        &[
            ("l_orderkey", 1_500_000.0 * sf, 4.0),
            ("l_partkey", 200_000.0 * sf, 4.0),
            ("l_suppkey", 10_000.0 * sf, 4.0),
            ("l_linenumber", 7.0, 4.0),
            ("l_quantity", 50.0, 8.0),
            ("l_extendedprice", 1_000_000.0 * sf, 8.0),
            ("l_discount", 11.0, 8.0),
            ("l_tax", 9.0, 8.0),
            ("l_returnflag", 3.0, 1.0),
            ("l_linestatus", 2.0, 1.0),
            ("l_shipdate", 2_526.0, 8.0),
            ("l_commitdate", 2_466.0, 8.0),
            ("l_receiptdate", 2_554.0, 8.0),
            ("l_shipmode", 7.0, 10.0),
        ],
    ));

    for (name, tbl, col) in [
        ("region_pk", "region", "r_regionkey"),
        ("nation_pk", "nation", "n_nationkey"),
        ("supplier_pk", "supplier", "s_suppkey"),
        ("customer_pk", "customer", "c_custkey"),
        ("part_pk", "part", "p_partkey"),
        ("partsupp_pk", "partsupp", "ps_partkey"),
        ("partsupp_sk", "partsupp", "ps_suppkey"),
        ("orders_pk", "orders", "o_orderkey"),
        ("orders_ck", "orders", "o_custkey"),
        ("lineitem_ok", "lineitem", "l_orderkey"),
        ("lineitem_pk2", "lineitem", "l_partkey"),
    ] {
        c.add_index(IndexDef {
            name: name.into(),
            table: tbl.into(),
            column: col.into(),
        })
        .expect("static index definitions are valid");
    }
    c
}

/// SQL text of TPC-H-like query `n` (1–22).
///
/// # Panics
///
/// Panics if `n` is outside 1..=22.
pub fn query(n: usize) -> String {
    match n {
        // Pricing summary: one full lineitem pass, aggregate-heavy.
        1 => "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), \
              sum(l_extendedprice * l_discount), avg(l_quantity), avg(l_extendedprice), count(*) \
              FROM lineitem WHERE l_shipdate <= '1998-09-02' /*+ sel 0.97 */ \
              GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag"
            .into(),
        // Minimum-cost supplier: correlated min() subquery per part.
        2 => "SELECT s.s_name, p.p_partkey FROM part p, partsupp ps, supplier s, nation n \
              WHERE p.p_partkey = ps.ps_partkey AND ps.ps_suppkey = s.s_suppkey \
              AND s.s_nationkey = n.n_nationkey AND p.p_size = 15 \
              AND ps.ps_supplycost <= (SELECT min(ps2.ps_supplycost) FROM partsupp ps2 \
                                       WHERE ps2.ps_partkey = p.p_partkey) \
              ORDER BY s.s_name LIMIT 100"
            .into(),
        // Shipping priority: 3-way join, large grouping.
        3 => "SELECT l.l_orderkey, sum(l.l_extendedprice), o.o_shippriority \
              FROM customer c, orders o, lineitem l \
              WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
              AND c.c_mktsegment = 'BUILDING' AND o.o_orderdate < '1995-03-15' /*+ sel 0.48 */ \
              GROUP BY l.l_orderkey, o.o_shippriority ORDER BY l.l_orderkey LIMIT 10"
            .into(),
        // Order priority check: semi-join plus a million-group sort —
        // the §7.9 sort-heavy profile.
        4 => "SELECT o_orderkey, count(*) FROM orders \
              WHERE o_orderdate >= '1993-07-01' /*+ sel 0.38 */ \
              AND o_orderkey IN (SELECT l_orderkey FROM lineitem \
                                 WHERE l_commitdate < l_receiptdate /*+ sel 0.5 */) \
              GROUP BY o_orderkey ORDER BY o_orderkey LIMIT 10"
            .into(),
        // Local supplier volume: 6-way join, small grouping.
        5 => "SELECT n.n_name, sum(l.l_extendedprice) \
              FROM customer c, orders o, lineitem l, supplier s, nation n, region r \
              WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
              AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey \
              AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
              AND r.r_name = 'ASIA' AND o.o_orderdate >= '1994-01-01' /*+ sel 0.15 */ \
              GROUP BY n.n_name ORDER BY n.n_name"
            .into(),
        // Forecasting revenue change: pure scan, almost no CPU.
        6 => "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
              WHERE l_shipdate >= '1994-01-01' /*+ sel 0.15 */ \
              AND l_discount BETWEEN 0.05 AND 0.07 /*+ sel 0.27 */ \
              AND l_quantity < 24 /*+ sel 0.47 */"
            .into(),
        // Volume shipping: wide join with a huge spilling aggregation —
        // the §7.4 memory-sensitive profile (B unit).
        7 => "SELECT s.s_name, o.o_orderdate, sum(l.l_extendedprice), sum(l.l_quantity), \
              sum(l.l_discount), sum(l.l_tax), avg(l.l_extendedprice) \
              FROM supplier s, lineitem l, orders o \
              WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey \
              AND l.l_shipdate BETWEEN '1995-01-01' AND '1996-12-31' /*+ sel 0.31 */ \
              GROUP BY s.s_name, o.o_orderdate ORDER BY s.s_name, o.o_orderdate"
            .into(),
        // National market share: 7-way join, light grouping.
        8 => "SELECT o.o_orderdate, sum(l.l_extendedprice) \
              FROM part p, supplier s, lineitem l, orders o, customer c, nation n, region r \
              WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey \
              AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey \
              AND c.c_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
              AND r.r_name = 'AMERICA' AND p.p_type = 'ECONOMY ANODIZED STEEL' \
              AND o.o_orderdate BETWEEN '1995-01-01' AND '1996-12-31' /*+ sel 0.3 */ \
              GROUP BY o.o_orderdate ORDER BY o.o_orderdate"
            .into(),
        // Product type profit: 5-way join, moderate grouping.
        9 => "SELECT n.n_name, o.o_orderdate, sum(l.l_extendedprice - ps.ps_supplycost) \
              FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n \
              WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey \
              AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey \
              AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey \
              AND p.p_name LIKE 'green%' /*+ sel 0.05 */ \
              GROUP BY n.n_name, o.o_orderdate ORDER BY n.n_name"
            .into(),
        // Returned item reporting: customer-level grouping.
        10 => "SELECT c.c_custkey, c.c_name, sum(l.l_extendedprice) \
               FROM customer c, orders o, lineitem l, nation n \
               WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
               AND o.o_orderdate >= '1993-10-01' /*+ sel 0.25 */ \
               AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey \
               GROUP BY c.c_custkey, c.c_name ORDER BY c.c_custkey LIMIT 20"
            .into(),
        // Important stock identification: grouped partsupp with a
        // global-threshold scalar subquery.
        11 => "SELECT ps.ps_partkey, sum(ps.ps_supplycost * ps.ps_availqty) \
               FROM partsupp ps, supplier s, nation n \
               WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey \
               AND n.n_name = 'GERMANY' \
               GROUP BY ps.ps_partkey \
               HAVING sum(ps.ps_supplycost * ps.ps_availqty) > \
                      (SELECT sum(ps2.ps_supplycost) FROM partsupp ps2) \
               ORDER BY ps.ps_partkey LIMIT 100"
            .into(),
        // Shipping modes: two-way join, tiny grouping.
        12 => "SELECT l.l_shipmode, count(*) FROM orders o, lineitem l \
               WHERE o.o_orderkey = l.l_orderkey AND l.l_shipmode IN ('MAIL', 'SHIP') \
               AND l.l_receiptdate >= '1994-01-01' /*+ sel 0.15 */ \
               GROUP BY l.l_shipmode ORDER BY l.l_shipmode"
            .into(),
        // Customer distribution: count orders per customer.
        13 => "SELECT c.c_custkey, count(*) FROM customer c, orders o \
               WHERE c.c_custkey = o.o_custkey \
               GROUP BY c.c_custkey ORDER BY c.c_custkey LIMIT 100"
            .into(),
        // Promotion effect: scan join with arithmetic.
        14 => "SELECT sum(l.l_extendedprice * l.l_discount) FROM lineitem l, part p \
               WHERE l.l_partkey = p.p_partkey \
               AND l.l_shipdate >= '1995-09-01' /*+ sel 0.0125 */"
            .into(),
        // Top supplier (revenue view folded in).
        15 => "SELECT l_suppkey, sum(l_extendedprice) FROM lineitem \
               WHERE l_shipdate >= '1996-01-01' /*+ sel 0.25 */ \
               GROUP BY l_suppkey ORDER BY l_suppkey LIMIT 100"
            .into(),
        // Parts/supplier relationship: small tables, small group table
        // — the §7.4 memory-INsensitive profile (D unit).
        16 => "SELECT p.p_brand, p.p_type, p.p_size, count(ps.ps_suppkey) \
               FROM partsupp ps, part p \
               WHERE p.p_partkey = ps.ps_partkey AND p.p_brand <> 'Brand#45' \
               AND p.p_size IN (1, 4, 7) /*+ sel 0.06 */ \
               GROUP BY p.p_brand, p.p_type, p.p_size ORDER BY p.p_brand LIMIT 100"
            .into(),
        // Small-quantity-order revenue: index-probe storm through the
        // correlated avg() subquery — the I/O-intensive profile of the
        // motivating example.
        17 => "SELECT sum(l.l_extendedprice) FROM lineitem l, part p \
               WHERE p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#23' \
               AND p.p_container = 'MED BOX' \
               AND l.l_quantity < (SELECT avg(l2.l_quantity) FROM lineitem l2 \
                                   WHERE l2.l_partkey = p.p_partkey)"
            .into(),
        // Large-volume customer: the most CPU-intensive profile —
        // a big semi-join whose aggregate arithmetic touches every
        // lineitem row, feeding a three-way join with massive grouping
        // (C unit; also sort-heavy for §7.9).
        18 => "SELECT c.c_name, o.o_orderkey, sum(l.l_quantity), avg(l.l_extendedprice), \
               count(*) \
               FROM customer c, orders o, lineitem l \
               WHERE o.o_orderkey IN (SELECT l2.l_orderkey FROM lineitem l2 \
                                      GROUP BY l2.l_orderkey \
                                      HAVING sum(l2.l_quantity * 1.01 + 0.5) > 300 \
                                      AND avg(l2.l_extendedprice * 0.98 - 1.0) > 0.0 \
                                      AND max(l2.l_discount * 2.0) > 0.0) /*+ sel 0.01 */ \
               AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
               GROUP BY c.c_name, o.o_orderkey ORDER BY o.o_orderkey LIMIT 100"
            .into(),
        // Discounted revenue: OR-heavy predicates, CPU on evaluation.
        19 => "SELECT sum(l.l_extendedprice * l.l_discount) FROM lineitem l, part p \
               WHERE p.p_partkey = l.l_partkey \
               AND (p.p_container = 'SM CASE' OR p.p_container = 'MED BAG' \
                    OR p.p_container = 'LG BOX') \
               AND l.l_quantity BETWEEN 1 AND 11 /*+ sel 0.2 */"
            .into(),
        // Potential part promotion: nested uncorrelated IN subqueries.
        20 => "SELECT s.s_name FROM supplier s, nation n \
               WHERE s.s_nationkey = n.n_nationkey AND n.n_name = 'CANADA' \
               AND s.s_suppkey IN (SELECT ps.ps_suppkey FROM partsupp ps \
                                   WHERE ps.ps_partkey IN \
                                         (SELECT p.p_partkey FROM part p \
                                          WHERE p.p_name LIKE 'forest%' /*+ sel 0.01 */)) \
               ORDER BY s.s_name"
            .into(),
        // Suppliers who kept orders waiting: a random-probe storm — two
        // correlated existence checks per qualifying lineitem row, each
        // an index probe into lineitem. Long, disk-seek-bound, and
        // almost insensitive to CPU: the least CPU-intensive profile
        // (I unit).
        21 => "SELECT s.s_name, count(*) FROM supplier s, lineitem l1, orders o \
               WHERE s.s_suppkey = l1.l_suppkey AND o.o_orderkey = l1.l_orderkey \
               AND o.o_orderstatus = 'F' /*+ sel 0.49 */ \
               AND l1.l_shipdate >= '1998-11-25' /*+ sel 0.001 */ \
               AND EXISTS (SELECT * FROM lineitem l2 WHERE l2.l_orderkey = l1.l_orderkey \
                           AND l2.l_suppkey <> l1.l_suppkey) \
               AND NOT EXISTS (SELECT * FROM lineitem l3 WHERE l3.l_orderkey = l1.l_orderkey \
                               AND l3.l_receiptdate > l3.l_commitdate /*+ sel 0.25 */) \
               GROUP BY s.s_name ORDER BY s.s_name LIMIT 100"
            .into(),
        // Global sales opportunity: anti-join via NOT IN.
        22 => "SELECT c.c_nationkey, count(*), sum(c.c_acctbal) FROM customer c \
               WHERE c.c_acctbal > 0.0 /*+ sel 0.2 */ \
               AND c.c_custkey NOT IN (SELECT o.o_custkey FROM orders o) \
               GROUP BY c.c_nationkey ORDER BY c.c_nationkey"
            .into(),
        other => panic!("TPC-H defines queries 1..=22, got {other}"),
    }
}

/// The modified Q18 of §7.6: an extra predicate inside the subquery so
/// the query "touches less data, and therefore spends less time waiting
/// for I/O".
pub fn query18_modified() -> String {
    "SELECT c.c_name, o.o_orderkey, sum(l.l_quantity) \
     FROM customer c, orders o, lineitem l \
     WHERE o.o_orderkey IN (SELECT l2.l_orderkey FROM lineitem l2 \
                            WHERE l2.l_shipdate >= '1997-06-01' /*+ sel 0.05 */ \
                            GROUP BY l2.l_orderkey \
                            HAVING sum(l2.l_quantity) > 100) /*+ sel 0.01 */ \
     AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
     GROUP BY c.c_name, o.o_orderkey ORDER BY o.o_orderkey LIMIT 100"
        .into()
}

/// A workload of `count` back-to-back instances of query `n`.
pub fn query_workload(n: usize, count: f64) -> Workload {
    let mut w = Workload::new(format!("{count:.0}xQ{n}"));
    w.push(WorkloadStatement::dss(query(n), count));
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use vda_simdb::bind::bind_statement;

    #[test]
    fn catalog_scales_with_sf() {
        let c1 = catalog(1.0);
        let c10 = catalog(10.0);
        let l1 = c1.table("lineitem").unwrap();
        let l10 = c10.table("lineitem").unwrap();
        assert_eq!(l1.rows, 6_000_000.0);
        assert_eq!(l10.rows, 60_000_000.0);
        assert!((l10.pages() / l1.pages() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn all_queries_parse_and_bind() {
        let c = catalog(1.0);
        for n in 1..=22 {
            let sql = query(n);
            let bound = bind_statement(&sql, &c)
                .unwrap_or_else(|e| panic!("Q{n} failed to bind: {e}\n{sql}"));
            assert!(!bound.is_write(), "Q{n} must be read-only");
        }
        bind_statement(&query18_modified(), &c).expect("modified Q18 binds");
    }

    #[test]
    #[should_panic(expected = "queries 1..=22")]
    fn rejects_unknown_query_number() {
        let _ = query(23);
    }

    #[test]
    fn q17_is_correlated() {
        let c = catalog(1.0);
        let b = bind_statement(&query(17), &c).unwrap();
        assert_eq!(b.subplans.len(), 1);
        assert!(matches!(
            b.subplans[0].executions,
            vda_simdb::bind::Executions::PerOuterRow { .. }
        ));
    }

    #[test]
    fn q18_subquery_is_uncorrelated() {
        let c = catalog(1.0);
        let b = bind_statement(&query(18), &c).unwrap();
        assert_eq!(b.subplans.len(), 1);
        assert!(matches!(
            b.subplans[0].executions,
            vda_simdb::bind::Executions::Once
        ));
    }

    #[test]
    fn query_workload_counts() {
        let w = query_workload(18, 25.0);
        assert_eq!(w.total_statements(), 25.0);
        assert_eq!(w.statements.len(), 1);
    }
}
