//! The paper's composable workload units.
//!
//! §7.3 builds CPU-sensitivity workloads from a CPU-intensive unit `C`
//! (multiple instances of Q18) and a non-CPU-intensive unit `I` (one
//! instance of Q21), where the instance counts are chosen so that the
//! two units have *the same completion time at 100 % allocation* —
//! otherwise the advisor would simply give more resources to the
//! longer workload and the experiment would not isolate resource
//! *sensitivity* from workload *length*. §7.4 does the same with a
//! memory-sensitive unit `B` (one Q7) and an insensitive unit `D`
//! (many Q16).
//!
//! [`balanced_pair`] reproduces that construction for any two anchor
//! queries given a cost oracle (the caller supplies estimated or
//! measured cost at full allocation).

use crate::tpch;
use crate::workload::Workload;

/// A reusable workload unit: a base workload merged `k` times into
/// composites like `5C + 5I`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadUnit {
    /// Unit label (`"C"`, `"I"`, `"B"`, `"D"`).
    pub label: String,
    /// The statements of one unit instance.
    pub workload: Workload,
}

impl WorkloadUnit {
    /// Define a unit.
    pub fn new(label: impl Into<String>, workload: Workload) -> Self {
        WorkloadUnit {
            label: label.into(),
            workload,
        }
    }

    /// Compose `k_self` copies of this unit with `k_other` copies of
    /// `other` into one workload named like `"3C+7I"`.
    pub fn compose(&self, k_self: f64, other: &WorkloadUnit, k_other: f64) -> Workload {
        let mut w = Workload::new(format!(
            "{}{}+{}{}",
            k_self, self.label, k_other, other.label
        ));
        if k_self > 0.0 {
            w.merge_scaled(&self.workload, k_self);
        }
        if k_other > 0.0 {
            w.merge_scaled(&other.workload, k_other);
        }
        w
    }

    /// `k` copies of this unit alone.
    pub fn times(&self, k: f64) -> Workload {
        let mut w = Workload::new(format!("{}{}", k, self.label));
        w.merge_scaled(&self.workload, k);
        w
    }
}

/// Build a balanced unit pair from two anchor queries: the costlier
/// query becomes a one-instance unit and the other query's instance
/// count is chosen so both units have equal cost under `cost_at_full` —
/// a callback returning the cost of a workload at 100 % resource
/// allocation, mirroring the paper's "scaled to have the same
/// completion time when running with 100 % of the available
/// resources". Counts may be fractional: a count is an execution
/// frequency over the monitoring interval, not an integer loop bound.
///
/// Returns the units in `(first, second)` query order — e.g.
/// `(I = 1×Q21, C = k×Q18)` for §7.3 and `(B = 1×Q7, D = k×Q16)` for
/// §7.4.
pub fn balanced_pair(
    first_query: usize,
    first_label: &str,
    second_query: usize,
    second_label: &str,
    cost_at_full: &mut dyn FnMut(&Workload) -> f64,
) -> (WorkloadUnit, WorkloadUnit) {
    let first_cost = cost_at_full(&tpch::query_workload(first_query, 1.0));
    let second_cost = cost_at_full(&tpch::query_workload(second_query, 1.0));
    assert!(
        first_cost.is_finite() && second_cost.is_finite() && first_cost > 0.0 && second_cost > 0.0,
        "cost oracle returned unusable costs: first={first_cost}, second={second_cost}"
    );
    let (first_count, second_count) = if first_cost >= second_cost {
        (1.0, first_cost / second_cost)
    } else {
        (second_cost / first_cost, 1.0)
    };
    (
        WorkloadUnit::new(first_label, tpch::query_workload(first_query, first_count)),
        WorkloadUnit::new(
            second_label,
            tpch::query_workload(second_query, second_count),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadStatement;

    fn unit(label: &str, sql: &str, count: f64) -> WorkloadUnit {
        let mut w = Workload::new(label);
        w.push(WorkloadStatement::dss(sql, count));
        WorkloadUnit::new(label, w)
    }

    #[test]
    fn compose_scales_both_sides() {
        let c = unit("C", "SELECT 1", 25.0);
        let i = unit("I", "SELECT 2", 1.0);
        let w = c.compose(3.0, &i, 7.0);
        assert_eq!(w.name, "3C+7I");
        assert_eq!(w.total_statements(), 3.0 * 25.0 + 7.0);
    }

    #[test]
    fn times_repeats_unit() {
        let c = unit("C", "SELECT 1", 2.0);
        assert_eq!(c.times(5.0).total_statements(), 10.0);
    }

    #[test]
    fn balanced_pair_equalizes_costs() {
        // Cost oracle: Q21 instance costs 25, Q18 instance costs 1.
        let mut cost = |w: &Workload| -> f64 {
            w.statements
                .iter()
                .map(|s| {
                    let per = if s.sql == crate::tpch::query(21) {
                        25.0
                    } else {
                        1.0
                    };
                    per * s.count
                })
                .sum()
        };
        let (i_unit, c_unit) = balanced_pair(21, "I", 18, "C", &mut cost);
        assert_eq!(cost(&i_unit.workload), 25.0);
        assert_eq!(cost(&c_unit.workload), 25.0);
        assert_eq!(c_unit.workload.total_statements(), 25.0);
    }

    #[test]
    fn balanced_pair_floors_at_one_instance() {
        let mut cost = |_: &Workload| 1.0;
        let (_, light) = balanced_pair(21, "I", 18, "C", &mut cost);
        assert_eq!(light.workload.total_statements(), 1.0);
    }
}
