//! The workload abstraction of §3.
//!
//! A workload is "a set of SQL statements, possibly with a frequency of
//! occurrence for each statement", collected over a fixed monitoring
//! interval common to all consolidated workloads — so a *longer*
//! workload represents a *higher arrival rate*, not a longer
//! observation window.

use serde::{Deserialize, Serialize};

/// Broad class of a statement, used for reporting and for executor
/// context defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatementKind {
    /// Decision-support (read-mostly analytical) statement.
    Dss,
    /// OLTP statement (short transactions, possibly writing, issued by
    /// many concurrent clients).
    Oltp,
}

/// One SQL statement with its frequency in the monitoring interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStatement {
    /// SQL text (parsed/bound lazily by consumers against the
    /// tenant's catalog).
    pub sql: String,
    /// Executions during the monitoring interval.
    pub count: f64,
    /// Concurrent clients issuing this statement (drives simulated
    /// lock contention; 1 for DSS streams).
    pub concurrency: f64,
    /// Statement class.
    pub kind: StatementKind,
}

impl WorkloadStatement {
    /// A single-stream DSS statement executed `count` times.
    pub fn dss(sql: impl Into<String>, count: f64) -> Self {
        WorkloadStatement {
            sql: sql.into(),
            count,
            concurrency: 1.0,
            kind: StatementKind::Dss,
        }
    }

    /// An OLTP statement executed `count` times by `concurrency`
    /// clients.
    pub fn oltp(sql: impl Into<String>, count: f64, concurrency: f64) -> Self {
        WorkloadStatement {
            sql: sql.into(),
            count,
            concurrency,
            kind: StatementKind::Oltp,
        }
    }
}

/// A named set of statements observed in one monitoring interval.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Workload {
    /// Display name (e.g. `"5C+5I"` or `"tpcc-4wh"`).
    pub name: String,
    /// The statements with frequencies.
    pub statements: Vec<WorkloadStatement>,
}

impl Workload {
    /// An empty workload with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Workload {
            name: name.into(),
            statements: Vec::new(),
        }
    }

    /// Append a statement (merging counts if identical SQL at the same
    /// concurrency already exists).
    pub fn push(&mut self, stmt: WorkloadStatement) -> &mut Self {
        if let Some(existing) = self
            .statements
            .iter_mut()
            .find(|s| s.sql == stmt.sql && s.concurrency == stmt.concurrency && s.kind == stmt.kind)
        {
            existing.count += stmt.count;
        } else {
            self.statements.push(stmt);
        }
        self
    }

    /// Merge another workload into this one, scaling its counts by
    /// `factor` (used to compose `k` units).
    pub fn merge_scaled(&mut self, other: &Workload, factor: f64) -> &mut Self {
        for s in &other.statements {
            let mut s = s.clone();
            s.count *= factor;
            self.push(s);
        }
        self
    }

    /// Multiply every statement count by `factor` (workload-intensity
    /// changes in the dynamic experiments).
    pub fn scale(&mut self, factor: f64) -> &mut Self {
        for s in &mut self.statements {
            s.count *= factor;
        }
        self
    }

    /// Total statement executions in the interval.
    pub fn total_statements(&self) -> f64 {
        self.statements.iter().map(|s| s.count).sum()
    }

    /// Whether any statement writes (used to pick executor defaults).
    pub fn has_oltp(&self) -> bool {
        self.statements
            .iter()
            .any(|s| s.kind == StatementKind::Oltp)
    }

    /// Builder-style rename.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_identical_statements() {
        let mut w = Workload::new("t");
        w.push(WorkloadStatement::dss("SELECT 1", 2.0));
        w.push(WorkloadStatement::dss("SELECT 1", 3.0));
        assert_eq!(w.statements.len(), 1);
        assert_eq!(w.statements[0].count, 5.0);
    }

    #[test]
    fn push_keeps_distinct_concurrency_separate() {
        let mut w = Workload::new("t");
        w.push(WorkloadStatement::oltp("UPDATE x SET a = 1", 1.0, 5.0));
        w.push(WorkloadStatement::oltp("UPDATE x SET a = 1", 1.0, 10.0));
        assert_eq!(w.statements.len(), 2);
    }

    #[test]
    fn merge_scaled_multiplies_counts() {
        let mut unit = Workload::new("unit");
        unit.push(WorkloadStatement::dss("SELECT 1", 2.0));
        let mut w = Workload::new("w");
        w.merge_scaled(&unit, 5.0);
        assert_eq!(w.total_statements(), 10.0);
    }

    #[test]
    fn scale_changes_intensity() {
        let mut w = Workload::new("w");
        w.push(WorkloadStatement::dss("SELECT 1", 4.0));
        w.scale(1.5);
        assert_eq!(w.total_statements(), 6.0);
    }

    #[test]
    fn oltp_detection() {
        let mut w = Workload::new("w");
        w.push(WorkloadStatement::dss("SELECT 1", 1.0));
        assert!(!w.has_oltp());
        w.push(WorkloadStatement::oltp("UPDATE t SET a = 1", 1.0, 8.0));
        assert!(w.has_oltp());
    }
}
