//! Adaptive consolidation under workload change (§6): dynamic
//! configuration management over monitoring periods.
//!
//! A DSS tenant and an OLTP tenant share a machine. Over eight
//! monitoring periods the DSS workload grows, and halfway through the
//! two tenants swap VMs (a major change). The dynamic configuration
//! manager classifies each period's change via the per-query
//! cost-estimate metric, keeps refining through minor changes, and
//! rebuilds its models from fresh optimizer estimates after the swap.
//!
//! ```text
//! cargo run --release --example adaptive_server
//! ```

use vda::core::dynamic::{DynamicConfigManager, DynamicOptions};
use vda::core::problem::{AxisSet, QoS, Resource, ResourceVector, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::{tpcc, tpch};

fn main() {
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut advisor = VirtualizationDesignAdvisor::new(hv);
    advisor.add_tenant(
        Tenant::new(
            "dss",
            Engine::db2(),
            tpch::catalog(1.0),
            tpch::query_workload(18, 2.0),
        )
        .expect("binds"),
        QoS::default(),
    );
    advisor.add_tenant(
        Tenant::new(
            "oltp",
            Engine::db2(),
            tpcc::catalog(10),
            tpcc::workload(4, 6, 40.0),
        )
        .expect("binds"),
        QoS::default(),
    );
    advisor.calibrate();

    let space = SearchSpace::over(
        AxisSet::of(&[Resource::Cpu]),
        ResourceVector::full().with(Resource::Memory, 0.25),
    );
    let mut manager = DynamicConfigManager::new(&advisor, space, DynamicOptions::default());

    println!(
        "{:<8} {:>8} {:>8} {:>12}  decisions",
        "period", "VM0 cpu", "VM1 cpu", "improvement"
    );
    for period in 1..=8 {
        // Minor change each period: the DSS workload intensifies.
        for i in 0..2 {
            if advisor.tenant(i).name == "dss" {
                advisor.tenant_mut(i).scale_workload(1.2);
            }
        }
        // Major change after period 4: the workloads trade VMs.
        if period == 5 {
            advisor.swap_tenants(0, 1);
            println!("--- workloads swapped between VMs ---");
        }

        let report = manager.process_period(&advisor);
        let improvement = advisor.actual_improvement(&space, &report.allocations);
        println!(
            "{:<8} {:>7.0}% {:>7.0}% {:>+11.1}%  {:?}",
            period,
            report.allocations[0].cpu() * 100.0,
            report.allocations[1].cpu() * 100.0,
            improvement * 100.0,
            report.decisions,
        );
    }
}
