//! Server consolidation: a hosting provider packs six heterogeneous
//! database tenants — OLTP and DSS, PostgreSQL-like and DB2-like —
//! onto one physical machine and lets the advisor divide CPU *and*
//! memory (§7.7's scenario, on a realistic mixed fleet).
//!
//! ```text
//! cargo run --release --example consolidation
//! ```

use vda::core::problem::{AxisSet, QoS, Resource, ResourceVector, SearchSpace};
use vda::core::refine::RefineOptions;
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::{tpcc, tpch, Workload, WorkloadStatement};

fn dss_mix(name: &str, queries: &[(usize, f64)]) -> Workload {
    let mut w = Workload::new(name);
    for &(q, count) in queries {
        w.push(WorkloadStatement::dss(tpch::query(q), count));
    }
    w
}

fn main() {
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut advisor = VirtualizationDesignAdvisor::new(hv);

    let sf1 = tpch::catalog(1.0);
    let wh10 = tpcc::catalog(10);

    // Three DSS tenants with different appetites.
    advisor.add_tenant(
        Tenant::new(
            "bi-dashboard",
            Engine::pg(),
            sf1.clone(),
            dss_mix("bi", &[(1, 2.0), (6, 4.0), (12, 2.0)]),
        )
        .expect("binds"),
        QoS::default(),
    );
    advisor.add_tenant(
        Tenant::new(
            "adhoc-analytics",
            Engine::db2(),
            sf1.clone(),
            dss_mix("adhoc", &[(18, 2.0), (3, 2.0), (7, 1.0)]),
        )
        .expect("binds"),
        QoS::default(),
    );
    advisor.add_tenant(
        Tenant::new(
            "nightly-reports",
            Engine::pg(),
            sf1,
            dss_mix("nightly", &[(13, 4.0), (16, 6.0), (22, 4.0)]),
        )
        .expect("binds"),
        QoS::default(),
    );

    // Three OLTP tenants of different sizes; the busiest gets a
    // degradation limit so consolidation cannot crush it.
    for (name, wh, clients, qos) in [
        ("orders-eu", 6u32, 8u32, QoS::with_limit(3.0)),
        ("orders-us", 4, 6, QoS::default()),
        ("orders-apac", 2, 5, QoS::default()),
    ] {
        advisor.add_tenant(
            Tenant::new(
                name,
                Engine::db2(),
                wh10.clone(),
                tpcc::workload(wh, clients, 20.0),
            )
            .expect("binds"),
            qos,
        );
    }

    advisor.calibrate();

    let space = SearchSpace::over(
        AxisSet::of(&[Resource::Cpu, Resource::Memory]),
        ResourceVector::full(),
    );
    let rec = advisor.recommend(&space);

    println!("{:<18} {:>6} {:>8}", "tenant", "cpu", "memory");
    for (i, alloc) in rec.result.allocations.iter().enumerate() {
        println!(
            "{:<18} {:>5.0}% {:>7.0}%",
            advisor.tenant(i).name,
            alloc.cpu() * 100.0,
            alloc.memory() * 100.0
        );
    }
    println!(
        "\ndegradation limits satisfied: {:?}",
        rec.result.limits_met
    );
    println!(
        "actual improvement over equal shares: {:+.1}%",
        advisor.actual_improvement(&space, &rec.result.allocations) * 100.0
    );

    // Online refinement (§5): observe the deployed configuration and
    // correct the optimizer's OLTP blind spots.
    let (outcome, _) =
        advisor.refine_recommendation(&space, &rec.result.allocations, &RefineOptions::default());
    println!(
        "after {} refinement iteration(s): {:+.1}%",
        outcome.iterations,
        advisor.actual_improvement(&space, &outcome.final_allocations) * 100.0
    );
}
