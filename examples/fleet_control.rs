//! Sharded fleet control plane: events in, decisions out, durable
//! snapshots in between.
//!
//! A three-machine fleet (two hardware classes) hosts six tenants. The
//! [`ControlPlane`] partitions it into pricing-class shards, re-solves
//! only the machines an event dirties (warm delta-solves over
//! persistent lattices, probes served by the fleet-wide cache), and
//! reconciles major workload changes against migration candidates in
//! other shards. Midway we serialize the whole earned state — models,
//! placements, warm exports, probe cache, decision log — through the
//! [`FleetSnapshot`] JSON format, restore it into a freshly built
//! fleet, and finish the event stream on the restored plane: the
//! decisions and placements are bit-identical to the uninterrupted
//! run, at delta-solve cost instead of recalibration cost. A final
//! burst goes through `ControlPlane::process_batch` — same-slot
//! events coalesce and the batch re-solves in one parallel wave.
//!
//! ```text
//! cargo run --release --example fleet_control
//! ```
//!
//! [`ControlPlane`]: vda::core::ControlPlane
//! [`FleetSnapshot`]: vda::core::FleetSnapshot

use vda::core::problem::{AxisSet, QoS, Resource, ResourceVector, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::core::{ControlPlane, ControlPlaneOptions, FleetEvent, FleetSnapshot};
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::tpch;

/// Build the fleet: machine 0 and 2 are stock testbeds, machine 1 a
/// faster clock (its own hardware class, so its own shard and its own
/// calibration registry row).
fn fleet() -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let queries = [[18, 6], [21, 7], [16, 6]];
    let mut machines = Vec::new();
    for (m, qs) in queries.iter().enumerate() {
        let mut spec = PhysicalMachine::paper_testbed();
        if m == 1 {
            spec.core_ghz *= 1.5;
        }
        let mut adv = VirtualizationDesignAdvisor::new(Hypervisor::new(spec));
        for (s, &q) in qs.iter().enumerate() {
            let name = format!("m{m}-t{s}-q{q}");
            adv.add_tenant(
                Tenant::new(
                    name.clone(),
                    Engine::db2(),
                    tpch::catalog(1.0),
                    tpch::query_workload(q, 1.0 + (m * 2 + s) as f64 * 0.25).named(name),
                )
                .expect("bench workloads bind"),
                if s == 0 {
                    QoS::with_limit(6.0)
                } else {
                    QoS::default()
                },
            );
        }
        machines.push(adv);
    }
    let space = SearchSpace::over(
        AxisSet::of(&[Resource::Cpu]),
        ResourceVector::full().with(Resource::Memory, 512.0 / 8192.0),
    );
    let spaces = vec![space; machines.len()];
    (machines, spaces)
}

/// Reconstruct the plane's *current* topology as fresh, uncalibrated
/// advisors — what a restarted process would rebuild from its own
/// inventory before feeding the snapshot to [`ControlPlane::restore`].
fn rebuild(plane: &ControlPlane) -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let mut machines = Vec::new();
    let mut spaces = Vec::new();
    for m in 0..plane.machine_count() {
        let live = plane.machine(m);
        let mut adv =
            VirtualizationDesignAdvisor::new(Hypervisor::new(*live.hypervisor().machine()));
        for (i, &q) in live.qos().iter().enumerate() {
            adv.add_tenant(live.tenant(i).clone(), q);
        }
        machines.push(adv);
        spaces.push(*plane.space(m));
    }
    (machines, spaces)
}

/// The event stream: intensity drift, a major workload change (a
/// migration candidate), an arrival, a departure.
fn events() -> Vec<FleetEvent> {
    vec![
        FleetEvent::WorkloadScaled {
            machine: 0,
            slot: 1,
            factor: 1.5,
        },
        FleetEvent::WorkloadChanged {
            machine: 2,
            slot: 1,
            workload: tpch::query_workload(21, 4.0).named("m2-t1-hot"),
        },
        FleetEvent::TenantArrived {
            machine: 1,
            tenant: Box::new(
                Tenant::new(
                    "newcomer-q6",
                    Engine::db2(),
                    tpch::catalog(1.0),
                    tpch::query_workload(6, 2.0).named("newcomer-q6"),
                )
                .expect("bench workloads bind"),
            ),
            qos: QoS::default(),
        },
        FleetEvent::TenantDeparted {
            machine: 0,
            slot: 1,
        },
    ]
}

fn main() {
    let (machines, spaces) = fleet();
    let options = ControlPlaneOptions {
        // Fleet-relative gates: a single-tenant move can't clear the
        // single-machine 5 % default against a whole-fleet objective.
        migration_threshold: 1e-3,
        recalibration_surcharge: 1e-2,
        ..ControlPlaneOptions::default()
    };
    let mut plane = ControlPlane::new(machines, spaces, options.clone());
    println!(
        "fleet up: {} machines in {} pricing-class shards",
        plane.machine_count(),
        plane.shards().len()
    );

    let stream = events();
    let half = stream.len() / 2;
    for event in &stream[..half] {
        let out = plane.process_event(event.clone());
        println!(
            "  #{} {:<34} re-solved {:?}  objective {:.4}",
            out.seq, out.action, out.resolved, out.objective
        );
    }

    // Durable checkpoint: everything the plane has earned, as JSON.
    let saved = plane.snapshot().to_json();
    println!(
        "snapshot at seq {}: {} bytes of JSON",
        plane.seq(),
        saved.len()
    );

    // A "restarted process": fresh, uncalibrated advisors rebuilt from
    // the *current* topology (events may have drifted it since
    // construction), state fed back from the snapshot. Restore
    // validates hardware and tenant fingerprints before accepting it.
    let parsed = FleetSnapshot::from_json(&saved).expect("snapshot parses");
    let (fresh, spaces) = rebuild(&plane);
    let mut restored =
        ControlPlane::restore(fresh, spaces, options, &parsed).expect("snapshot restores");

    for event in &stream[half..] {
        let a = plane.process_event(event.clone());
        let b = restored.process_event(event.clone());
        assert_eq!(a.action, b.action);
        assert_eq!(a.resolved, b.resolved);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        println!(
            "  #{} {:<34} re-solved {:?}  objective {:.4}  (restored agrees)",
            b.seq, b.action, b.resolved, b.objective
        );
    }
    assert_eq!(plane.decision_log(), restored.decision_log());
    assert_eq!(plane.placements(), restored.placements());

    // Batched ingestion: a burst lands as one call — the two events on
    // machine 1 slot 0 coalesce, the dirty machines re-solve in a
    // single parallel wave, one decision is logged, and the running
    // and restored planes still agree bit for bit.
    let burst = vec![
        FleetEvent::WorkloadScaled {
            machine: 1,
            slot: 0,
            factor: 1.2,
        },
        FleetEvent::WorkloadScaled {
            machine: 2,
            slot: 0,
            factor: 0.9,
        },
        FleetEvent::WorkloadScaled {
            machine: 1,
            slot: 0,
            factor: 1.1,
        },
    ];
    let a = plane.process_batch(&burst);
    let b = restored.process_batch(&burst);
    assert_eq!(a.action, b.action);
    assert_eq!(a.resolved, b.resolved);
    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    println!(
        "  batch #{}: {:<30} re-solved {:?}  objective {:.4}",
        a.seq, a.action, a.resolved, a.objective
    );

    let stats = plane.stats();
    println!(
        "done: {} events, {} re-solves, {} migrations, {} optimizer calls",
        stats.events, stats.resolves, stats.migrations, stats.optimizer_calls
    );
    println!("restored plane finished the stream bit-identically");
}
