//! Warm-started incremental re-optimization: period-over-period
//! delta-solves against a persistent DP lattice, backed by a shared
//! probe cache.
//!
//! Two machines each host two tenants. Every monitoring period one
//! tenant drifts (its workload intensifies or relaxes) and both
//! machines re-solve. With [`recommend_c2f_warm`] the advisor keeps
//! its coarse lattice and per-workload option tables between periods,
//! so a drift on one tenant rebuilds only that tenant's cells; the
//! shared [`ProbeCache`] means identical (model, workload, allocation)
//! probes are priced once fleet-wide. The answers are bit-for-bit the
//! same as a cold solve — only the optimizer-call bill shrinks.
//!
//! ```text
//! cargo run --release --example incremental_reopt
//! ```
//!
//! [`recommend_c2f_warm`]: vda::core::VirtualizationDesignAdvisor::recommend_c2f_warm
//! [`ProbeCache`]: vda::core::costmodel::whatif::ProbeCache

use vda::core::costmodel::whatif::ProbeCache;
use vda::core::problem::{AxisSet, QoS, Resource, ResourceVector, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::tpch;

fn advisor(queries: [usize; 2], limits: [f64; 2]) -> VirtualizationDesignAdvisor {
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut advisor = VirtualizationDesignAdvisor::new(hv);
    for (i, (&q, &limit)) in queries.iter().zip(&limits).enumerate() {
        advisor.add_tenant(
            Tenant::new(
                format!("tenant-{i}-q{q}"),
                Engine::db2(),
                tpch::catalog(1.0),
                tpch::query_workload(q, 1.0 + i as f64),
            )
            .expect("binds"),
            QoS::with_limit(limit),
        );
    }
    advisor.calibrate();
    advisor
}

fn main() {
    // One shared probe cache across the fleet: what-if prices computed
    // on either machine are visible to both.
    let probe = ProbeCache::new();
    let mut fleet = vec![
        advisor([18, 6], [6.0, f64::INFINITY]),
        advisor([21, 7], [4.0, f64::INFINITY]),
    ];
    for adv in &mut fleet {
        adv.attach_probe_cache(probe.clone());
    }

    let space = SearchSpace::over(
        AxisSet::of(&[Resource::Cpu]),
        ResourceVector::full().with(Resource::Memory, 0.5),
    );
    println!(
        "{:<8} {:>10} {:>10} {:>14} {:>12}",
        "period", "m0 calls", "m1 calls", "objectives", "probe hits"
    );
    for period in 1..=6 {
        // One tenant drifts per period; everyone re-solves.
        let machine = (period - 1) % fleet.len();
        let factor = if period <= 3 { 1.3 } else { 1.0 / 1.3 };
        fleet[machine].tenant_mut(0).scale_workload(factor);

        let recs: Vec<_> = fleet
            .iter()
            .map(|adv| adv.recommend_c2f_warm(&space))
            .collect();
        println!(
            "{:<8} {:>10} {:>10} {:>6.1} {:>7.1} {:>12}",
            period,
            recs[0].optimizer_calls,
            recs[1].optimizer_calls,
            recs[0].result.weighted_cost,
            recs[1].result.weighted_cost,
            probe.hits(),
        );
    }

    for (i, adv) in fleet.iter().enumerate() {
        let (cold, delta, reuses) = adv.warm_stats();
        println!(
            "machine {i}: {cold} cold solve(s), {delta} delta solve(s), \
             {reuses} lattice reuse(s)"
        );
    }
    println!(
        "probe cache: {} entries, {} hits, {} misses",
        probe.len(),
        probe.hits(),
        probe.misses()
    );
}
