//! QoS controls: degradation limits and benefit gain factors (§4.6).
//!
//! Five identical tenants share a machine. A naive advisor would give
//! each 20 % of the CPU. This example shows the two levers a hosting
//! provider has:
//!
//! * a **degradation limit** `L_i` caps how much slower a premium
//!   tenant may get relative to owning the whole machine;
//! * a **gain factor** `G_i` makes a tenant's seconds count more in
//!   the objective, pulling resources toward it.
//!
//! ```text
//! cargo run --release --example qos_sla
//! ```

use vda::core::problem::{AxisSet, QoS, Resource, ResourceVector, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::tpch;

fn build_advisor(qos: Vec<QoS>) -> VirtualizationDesignAdvisor {
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut advisor = VirtualizationDesignAdvisor::new(hv);
    let catalog = tpch::catalog(1.0);
    for (i, q) in qos.into_iter().enumerate() {
        advisor.add_tenant(
            Tenant::new(
                format!("tenant-{i}"),
                Engine::db2(),
                catalog.clone(),
                tpch::query_workload(18, 2.0),
            )
            .expect("binds"),
            q,
        );
    }
    advisor.calibrate();
    advisor
}

fn show(title: &str, advisor: &VirtualizationDesignAdvisor, space: &SearchSpace) {
    let rec = advisor.recommend(space);
    println!("{title}");
    for (i, alloc) in rec.result.allocations.iter().enumerate() {
        let solo = advisor.estimator(i).cost(space.solo_allocation());
        println!(
            "  tenant-{i}: {:>3.0}% CPU, degradation {:.2}x (limit met: {})",
            alloc.cpu() * 100.0,
            rec.result.costs[i] / solo,
            rec.result.limits_met[i],
        );
    }
    println!();
}

fn main() {
    let space = SearchSpace::over(
        AxisSet::of(&[Resource::Cpu]),
        ResourceVector::full().with(Resource::Memory, 0.25),
    );

    // Baseline: five equals.
    let advisor = build_advisor(vec![QoS::default(); 5]);
    show("no QoS settings (symmetric):", &advisor, &space);

    // A premium tenant with a hard degradation cap.
    let advisor = build_advisor(vec![
        QoS::with_limit(2.0),
        QoS::default(),
        QoS::default(),
        QoS::default(),
        QoS::default(),
    ]);
    show("tenant-0 capped at 2.0x degradation:", &advisor, &space);

    // A tenant whose seconds are worth five times everyone else's.
    let advisor = build_advisor(vec![
        QoS::with_gain(5.0),
        QoS::default(),
        QoS::default(),
        QoS::default(),
        QoS::default(),
    ]);
    show("tenant-0 with gain factor 5:", &advisor, &space);
}
