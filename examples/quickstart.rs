//! Quickstart: consolidate two DSS tenants onto one physical machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the simulated physical machine, hosts a CPU-hungry workload
//! and a scan-bound workload in two VMs, calibrates the optimizer cost
//! models, and asks the virtualization design advisor for CPU shares.

use vda::core::problem::{AxisSet, QoS, Resource, ResourceVector, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::tpch;

fn main() {
    // The shared physical server (the paper's 4-core / 8 GB testbed,
    // with its I/O-contention VM running).
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut advisor = VirtualizationDesignAdvisor::new(hv);

    // Two tenants on a 1 GB TPC-H-like database: Q18 is CPU-intensive,
    // Q6 is a pure scan.
    let catalog = tpch::catalog(1.0);
    advisor.add_tenant(
        Tenant::new(
            "analytics",
            Engine::db2(),
            catalog.clone(),
            tpch::query_workload(18, 4.0),
        )
        .expect("workload binds"),
        QoS::default(),
    );
    advisor.add_tenant(
        Tenant::new(
            "reporting",
            Engine::db2(),
            catalog,
            tpch::query_workload(6, 4.0),
        )
        .expect("workload binds"),
        QoS::default(),
    );

    // One-time, per-machine optimizer calibration (§4.3 of the paper).
    advisor.calibrate();

    // Recommend CPU shares; each VM keeps a fixed 2 GB memory grant.
    let space = SearchSpace::over(
        AxisSet::of(&[Resource::Cpu]),
        ResourceVector::full().with(Resource::Memory, 0.25),
    );
    let rec = advisor.recommend(&space);

    println!(
        "greedy search converged in {} iterations\n",
        rec.result.iterations
    );
    for (i, alloc) in rec.result.allocations.iter().enumerate() {
        println!(
            "  {:<10} -> {:>3.0}% CPU (estimated workload time {:>7.1}s)",
            advisor.tenant(i).name,
            alloc.cpu() * 100.0,
            rec.result.costs[i],
        );
    }

    let improvement = advisor.actual_improvement(&space, &rec.result.allocations);
    println!(
        "\nactual improvement over the default 50/50 split: {:+.1}%",
        improvement * 100.0
    );
}
