#![warn(missing_docs)]

//! # vda — Virtualization Design Advisor
//!
//! A full reproduction of *Automatic Virtual Machine Configuration for
//! Database Workloads* (Soror, Minhas, Aboulnaga, Salem, Kokosielis,
//! Kamath — SIGMOD 2008 / TODS), built as a Rust workspace with every
//! substrate the paper depends on implemented from scratch:
//!
//! * [`core`] — the virtualization design advisor itself: optimizer
//!   calibration, what-if cost estimation, greedy configuration
//!   enumeration, online refinement, dynamic configuration management.
//! * [`simdb`] — a simulated DBMS substrate (SQL subset, cost-based
//!   optimizer, PostgreSQL-like and DB2-like engines, analytic
//!   executor).
//! * [`vmm`] — a Xen-like hypervisor model (CPU shares, memory grants,
//!   disk contention, calibration micro-benchmarks).
//! * [`workloads`] — TPC-H-like and TPC-C-like workload generators.
//! * [`stats`] — regression/solving/piecewise-model numerics.
//!
//! See the README for a quickstart and `DESIGN.md` for the system
//! inventory; `EXPERIMENTS.md` records the reproduction of every figure
//! and table in the paper's evaluation.

pub use vda_core as core;
pub use vda_simdb as simdb;
pub use vda_stats as stats;
pub use vda_vmm as vmm;
pub use vda_workloads as workloads;

/// Commonly used items, re-exported for `use vda::prelude::*`.
pub mod prelude {
    pub use vda_core::advisor::VirtualizationDesignAdvisor;
    pub use vda_core::problem::{Allocation, QoS, Resource, SearchSpace};
    pub use vda_core::tenant::Tenant;
    pub use vda_simdb::engines::{Engine, EngineKind};
    pub use vda_vmm::{Hypervisor, PhysicalMachine, VmConfig};
    pub use vda_workloads::{Workload, WorkloadStatement};
}
