//! Property tests for the adaptive-calibration subsystem: with
//! adaptation disabled the control plane must be bit-identical to the
//! frozen refined-model path (objectives, allocations, optimizer-call
//! counts); a rolled-back canary must restore the pre-canary model
//! exactly; and snapshots taken mid-adaptation (residual stores and
//! guardrail trackers live) must round-trip and resume bit-identically.

use proptest::prelude::*;
use vda::core::problem::{QoS, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::core::{
    AdaptionOptions, AdaptiveTuningOptions, ControlPlane, ControlPlaneOptions, FleetEvent,
    FleetSnapshot, GuardrailOptions,
};
use vda::simdb::engines::{Engine, EngineKind};
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::{tpcc, tpch};

/// TPC-C warehouses accessed by every OLTP tenant.
const WAREHOUSES: u32 = 2;

/// Clients per warehouse at construction; drift events raise this so
/// the unmodeled lock-contention gap widens.
const BASE_CLIENTS: u32 = 2;

/// Scan-leaning DSS queries (cheap to probe in debug builds).
const DSS: [usize; 2] = [6, 16];

/// Two single-class machines, each hosting one Db2 DSS tenant (slot 0)
/// and one Pg TPC-C tenant (slot 1) — the optimizer's known OLTP
/// blind spot supplies the estimate/actual gap adaptation learns from.
/// Intensity salts are per global tenant index, so workload
/// fingerprints are fleet-unique.
fn fleet() -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let dss_cat = tpch::catalog(1.0);
    let oltp_cat = tpcc::catalog(WAREHOUSES);
    let mut machines = Vec::new();
    for m in 0..2usize {
        let mut adv =
            VirtualizationDesignAdvisor::new(Hypervisor::new(PhysicalMachine::paper_testbed()));
        let q = DSS[m % DSS.len()];
        let g = m * 2;
        let name = format!("m{m}-dss-q{q}");
        adv.add_tenant(
            Tenant::new(
                name.clone(),
                Engine::db2(),
                dss_cat.clone(),
                tpch::query_workload(q, 2.0 * (1.0 + 0.001 * g as f64)).named(name),
            )
            .expect("test workloads bind"),
            QoS::default(),
        );
        let g = m * 2 + 1;
        let name = format!("m{m}-oltp");
        adv.add_tenant(
            Tenant::new(
                name.clone(),
                Engine::pg(),
                oltp_cat.clone(),
                tpcc::workload(WAREHOUSES, BASE_CLIENTS, 40.0 * (1.0 + 0.001 * g as f64))
                    .named(name),
            )
            .expect("test workloads bind"),
            QoS::default(),
        );
        machines.push(adv);
    }
    let space = SearchSpace::cpu_only(512.0 / 8192.0);
    (machines, vec![space; 2])
}

/// Prohibitive migration threshold: the topology stays pinned, so the
/// state-equality assertions compare like with like.
fn options(adaptive: Option<AdaptiveTuningOptions>) -> ControlPlaneOptions {
    ControlPlaneOptions {
        migration_threshold: 0.5,
        recalibration_surcharge: 1e-3,
        incremental: true,
        adaptive,
        ..ControlPlaneOptions::default()
    }
}

/// Small-sample knobs so the full Shadow → Canary → verdict lifecycle
/// fits in a handful of reports. `promotable: false` sets an
/// unsatisfiable objective-regression budget, forcing the canary
/// verdict to roll back.
fn tuning(promotable: bool) -> AdaptiveTuningOptions {
    AdaptiveTuningOptions {
        adaption: AdaptionOptions {
            min_samples: 2,
            ..AdaptionOptions::default()
        },
        guardrail: GuardrailOptions {
            min_shadow_samples: 2,
            canary_tenants: 1,
            min_canary_samples: 2,
            max_error_inflation: 0.5,
            max_objective_regression: if promotable { 10.0 } else { -1.0 },
        },
    }
}

/// The drift event for machine `m`: replace its OLTP workload with a
/// heavier-contention variant. The event-index salt keeps every
/// drifted fingerprint unique.
fn drift_event(m: usize, clients: u32, e: usize) -> FleetEvent {
    FleetEvent::WorkloadChanged {
        machine: m,
        slot: 1,
        workload: tpcc::workload(WAREHOUSES, clients, 40.0 * (1.0 + 0.01 * e as f64))
            .named(format!("m{m}-oltp-drift-{e}")),
    }
}

/// Per-machine installed-calibration fingerprints — the certificate
/// that rollback restored the pre-canary models exactly.
fn calibration_fingerprints(plane: &ControlPlane) -> Vec<Vec<(&'static str, u64)>> {
    (0..plane.machine_count())
        .map(|m| {
            let adv = plane.machine(m);
            [EngineKind::Db2Sim, EngineKind::PgSim, EngineKind::TupleSim]
                .into_iter()
                .filter_map(|kind| {
                    adv.calibration(kind)
                        .map(|c| (kind.name(), c.fingerprint()))
                })
                .collect()
        })
        .collect()
}

/// Decode one generated step against the fixed two-machine topology.
/// `kind % 3`: a DSS workload scale, an OLTP contention drift, or an
/// actuals report on the OLTP slot.
fn decode_event(e: usize, kind: u32, msel: usize, factor: f64) -> FleetEvent {
    let m = msel % 2;
    match kind % 3 {
        0 => FleetEvent::WorkloadScaled {
            machine: m,
            slot: 0,
            factor,
        },
        1 => drift_event(m, BASE_CLIENTS + 1 + (e % 7) as u32, e),
        _ => FleetEvent::ActualsReported {
            machine: m,
            slot: 1,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// With adaptation disabled (the default), `ActualsReported` is a
    /// pure no-op: zero optimizer calls, an `(off)` decision, and a
    /// fleet bit-identical — objectives, allocations, per-event
    /// optimizer-call counts — to a plane that never saw the reports.
    /// This pins the adaptation-off path to the pre-subsystem
    /// refined-model behavior.
    #[test]
    fn adaptation_off_is_bit_identical_to_the_frozen_path(
        steps in proptest::collection::vec(
            (0u32..3, 0usize..2, 0.5f64..2.0),
            3..8,
        ),
    ) {
        let stream: Vec<FleetEvent> = steps
            .iter()
            .enumerate()
            .map(|(e, &(kind, msel, factor))| decode_event(e, kind, msel, factor))
            .collect();

        let (machines, spaces) = fleet();
        let mut with_reports = ControlPlane::new(machines, spaces, options(None));
        let (machines, spaces) = fleet();
        let mut without = ControlPlane::new(machines, spaces, options(None));
        prop_assert_eq!(
            with_reports.stats().optimizer_calls,
            without.stats().optimizer_calls
        );

        for ev in &stream {
            let out = with_reports.process_event(ev.clone());
            if matches!(ev, FleetEvent::ActualsReported { .. }) {
                prop_assert!(out.action.ends_with("(off)"), "action: {}", out.action);
                prop_assert_eq!(out.optimizer_calls, 0);
            } else {
                let base = without.process_event(ev.clone());
                prop_assert_eq!(out.optimizer_calls, base.optimizer_calls);
                prop_assert_eq!(out.objective.to_bits(), base.objective.to_bits());
            }
        }

        prop_assert_eq!(with_reports.placements(), without.placements());
        prop_assert_eq!(
            with_reports.objective().to_bits(),
            without.objective().to_bits()
        );
        prop_assert_eq!(
            with_reports.stats().optimizer_calls,
            without.stats().optimizer_calls
        );
    }

    /// Enabling the adaptive option without feeding any actuals must
    /// change nothing: the machinery only engages on reports, so every
    /// decision, allocation, and optimizer-call count stays
    /// bit-identical to the frozen path.
    #[test]
    fn adaptive_enabled_without_reports_changes_nothing(
        steps in proptest::collection::vec(
            (0u32..2, 0usize..2, 0.5f64..2.0),
            2..6,
        ),
    ) {
        let stream: Vec<FleetEvent> = steps
            .iter()
            .enumerate()
            .map(|(e, &(kind, msel, factor))| decode_event(e, kind, msel, factor))
            .collect();

        let (machines, spaces) = fleet();
        let mut adaptive = ControlPlane::new(machines, spaces, options(Some(tuning(true))));
        let (machines, spaces) = fleet();
        let mut frozen = ControlPlane::new(machines, spaces, options(None));

        for ev in &stream {
            let a = adaptive.process_event(ev.clone());
            let f = frozen.process_event(ev.clone());
            prop_assert_eq!(a.optimizer_calls, f.optimizer_calls);
            prop_assert_eq!(a.objective.to_bits(), f.objective.to_bits());
            prop_assert_eq!(&a.action, &f.action);
        }

        prop_assert_eq!(adaptive.placements(), frozen.placements());
        prop_assert_eq!(
            adaptive.objective().to_bits(),
            frozen.objective().to_bits()
        );
        prop_assert!(adaptive.tuners().is_empty());
        prop_assert!(adaptive.adaption_storages().is_empty());
    }

    /// A canary that fails its verdict must restore the pre-canary
    /// model exactly: placements, objective bits, and every installed
    /// calibration fingerprint equal a lockstep never-canaried
    /// baseline, and the tracker is gone.
    #[test]
    fn rollback_restores_the_pre_canary_model_exactly(
        drift_clients in 8u32..13,
    ) {
        let (machines, spaces) = fleet();
        let mut plane = ControlPlane::new(machines, spaces, options(Some(tuning(false))));
        let (machines, spaces) = fleet();
        let mut baseline = ControlPlane::new(machines, spaces, options(None));

        let mut canary_deployed = false;
        let mut rolled_back = false;
        let mut events: Vec<FleetEvent> = (0..2).map(|m| drift_event(m, drift_clients, m)).collect();
        for _ in 0..12 {
            for m in 0..2usize {
                events.push(FleetEvent::ActualsReported { machine: m, slot: 1 });
            }
        }
        // Drive both planes over the shared stream, stopping at the
        // first rollback (storage cleared, no further re-proposal).
        for ev in events {
            let out = plane.process_event(ev.clone());
            baseline.process_event(ev);
            prop_assert!(!out.action.ends_with("(promoted)"), "must never promote");
            canary_deployed |= out.action.ends_with("(canary)");
            if out.action.ends_with("(rolled-back)") {
                rolled_back = true;
                break;
            }
        }

        prop_assert!(canary_deployed, "the candidate must reach canary");
        prop_assert!(rolled_back, "the canary verdict must roll back");
        prop_assert!(plane.tuners().is_empty(), "rollback removes the tracker");
        prop_assert_eq!(plane.placements(), baseline.placements());
        prop_assert_eq!(plane.objective().to_bits(), baseline.objective().to_bits());
        prop_assert_eq!(
            calibration_fingerprints(&plane),
            calibration_fingerprints(&baseline)
        );
    }
}

/// Reconstruct the plane's current topology as fresh, uncalibrated
/// advisors — what a restarted process rebuilds before feeding the
/// snapshot to `ControlPlane::restore`.
fn rebuild(plane: &ControlPlane) -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let mut machines = Vec::new();
    let mut spaces = Vec::new();
    for m in 0..plane.machine_count() {
        let live = plane.machine(m);
        let mut adv =
            VirtualizationDesignAdvisor::new(Hypervisor::new(*live.hypervisor().machine()));
        for (i, &q) in live.qos().iter().enumerate() {
            adv.add_tenant(live.tenant(i).clone(), q);
        }
        machines.push(adv);
        spaces.push(*plane.space(m));
    }
    (machines, spaces)
}

/// The full adaptation stream: drift both machines, then six rounds of
/// alternating actuals reports — enough for the candidate to walk
/// Shadow → Canary → Promoted with room to spare.
fn adaptation_stream() -> Vec<FleetEvent> {
    let mut events: Vec<FleetEvent> = (0..2).map(|m| drift_event(m, 10, m)).collect();
    for _ in 0..6 {
        for m in 0..2usize {
            events.push(FleetEvent::ActualsReported {
                machine: m,
                slot: 1,
            });
        }
    }
    events
}

/// Snapshot-v3 round-trip mid-adaptation: cut the stream at `restart`
/// — possibly mid-shadow or mid-canary, with residual stores and a
/// live guardrail tracker in the snapshot — restore into a fresh
/// fleet, and resume. The resumed run must match the uninterrupted one
/// bit for bit, and both serializations must be byte-identical.
fn check_adaptive_restart_at(stream: &[FleetEvent], restart: usize) {
    let opts = || options(Some(tuning(true)));

    let (machines, spaces) = fleet();
    let mut reference = ControlPlane::new(machines, spaces, opts());
    for ev in stream {
        reference.process_event(ev.clone());
    }

    let (machines, spaces) = fleet();
    let mut first = ControlPlane::new(machines, spaces, opts());
    for ev in &stream[..restart] {
        first.process_event(ev.clone());
    }
    let snapshot = first.snapshot();
    let json = snapshot.to_json();
    let parsed = FleetSnapshot::from_json(&json).expect("snapshot parses");
    assert_eq!(parsed, snapshot, "parse must invert to_json");

    let (fresh, spaces) = rebuild(&first);
    let mut resumed = ControlPlane::restore(fresh, spaces, opts(), &parsed).expect("restores");
    assert_eq!(
        resumed.snapshot().to_json(),
        json,
        "restored plane must re-serialize byte-identically"
    );
    for ev in &stream[restart..] {
        resumed.process_event(ev.clone());
    }

    assert_eq!(
        resumed.decision_log(),
        reference.decision_log(),
        "restart at {restart}: decision logs diverge"
    );
    assert_eq!(resumed.placements(), reference.placements());
    assert_eq!(
        resumed.objective().to_bits(),
        reference.objective().to_bits()
    );
    assert_eq!(
        resumed.snapshot().to_json(),
        reference.snapshot().to_json(),
        "restart at {restart}: final snapshots diverge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random restart points across the adaptation lifecycle: the
    /// snapshot carries whatever adaption state is live at the cut —
    /// empty stores, mid-shadow accumulators, a deployed canary, or a
    /// promoted model — and resume is bit-identical either way.
    #[test]
    fn snapshot_roundtrips_mid_adaptation(cut in 0usize..64) {
        let stream = adaptation_stream();
        check_adaptive_restart_at(&stream, cut % (stream.len() + 1));
    }
}

/// The uninterrupted adaptation run must actually exercise the
/// lifecycle this file claims to snapshot: the candidate promotes, and
/// the promoted model reprices the fleet.
#[test]
fn the_adaptation_stream_promotes() {
    let (machines, spaces) = fleet();
    let mut plane = ControlPlane::new(machines, spaces, options(Some(tuning(true))));
    let mut saw_canary = false;
    let mut saw_promotion = false;
    for ev in adaptation_stream() {
        let out = plane.process_event(ev);
        saw_canary |= out.action.ends_with("(canary)");
        saw_promotion |= out.action.ends_with("(promoted)");
    }
    assert!(saw_canary, "the candidate must deploy on its canary subset");
    assert!(saw_promotion, "the candidate must promote");
    assert!(
        !plane.adaption_storages().is_empty(),
        "residual stores persist past promotion"
    );
}

/// A snapshot taken mid-canary restores the *tracker* too: the resumed
/// plane continues the canary from its accumulated sample counts, not
/// from scratch.
#[test]
fn a_mid_canary_snapshot_restores_the_tracker() {
    let stream = adaptation_stream();
    let opts = || options(Some(tuning(true)));

    let (machines, spaces) = fleet();
    let mut plane = ControlPlane::new(machines, spaces, opts());
    let mut cut = None;
    for (e, ev) in stream.iter().enumerate() {
        let out = plane.process_event(ev.clone());
        if out.action.ends_with("(canary)") {
            cut = Some(e + 1);
            break;
        }
    }
    let cut = cut.expect("the stream must reach canary");
    assert!(
        !plane.tuners().is_empty(),
        "a deployed canary keeps its tracker"
    );

    let snapshot = plane.snapshot();
    let (fresh, spaces) = rebuild(&plane);
    let resumed = ControlPlane::restore(fresh, spaces, opts(), &snapshot).expect("restores");
    assert_eq!(
        resumed.tuners().len(),
        plane.tuners().len(),
        "the tracker must survive restore"
    );
    assert_eq!(
        resumed.adaption_storages().len(),
        plane.adaption_storages().len()
    );

    // And the contract holds end to end from this specific cut.
    check_adaptive_restart_at(&stream, cut);
}
