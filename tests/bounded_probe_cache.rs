//! Property tests for the bounded-memory probe cache: across random
//! drift sequences, a control plane whose [`ProbeCache`] is capped —
//! however tightly — must make **bit-identical decisions** to an
//! unbounded twin. Eviction is allowed to cost recomputation (extra
//! misses, extra optimizer calls); it is never allowed to change an
//! action string, a re-solved set, a migration, or an objective bit.
//!
//! [`ProbeCache`]: vda::core::costmodel::ProbeCache

use proptest::prelude::*;
use vda::core::problem::{QoS, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::core::{ControlPlane, ControlPlaneOptions, FleetEvent};
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::tpch;

/// Queries cycled through by drift events (scan-leaning: cheap to
/// probe, so the tests stay affordable in debug builds).
const CYCLE: [usize; 3] = [6, 16, 7];

/// A miniature two-class fleet: machine 0 a stock paper testbed,
/// machine 1 a faster clock, two tenants each.
fn fleet() -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let mut machines = Vec::new();
    for m in 0..2usize {
        let mut spec = PhysicalMachine::paper_testbed();
        if m == 1 {
            spec.core_ghz *= 1.5;
        }
        let mut adv = VirtualizationDesignAdvisor::new(Hypervisor::new(spec));
        for s in 0..2usize {
            let q = CYCLE[(m * 2 + s) % CYCLE.len()];
            let name = format!("m{m}-t{s}-q{q}");
            adv.add_tenant(
                Tenant::new(
                    name.clone(),
                    Engine::db2(),
                    tpch::catalog(1.0),
                    tpch::query_workload(q, 1.0 + (m * 2 + s) as f64 * 0.5).named(name),
                )
                .expect("bench workloads bind"),
                if s == 0 {
                    QoS::with_limit(6.0)
                } else {
                    QoS::default()
                },
            );
        }
        machines.push(adv);
    }
    let space = SearchSpace::cpu_only(512.0 / 8192.0);
    (machines, vec![space; 2])
}

fn options(probe_cache_capacity: usize) -> ControlPlaneOptions {
    ControlPlaneOptions {
        migration_threshold: 1e-3,
        recalibration_surcharge: 1e-2,
        probe_cache_capacity,
        ..ControlPlaneOptions::default()
    }
}

/// Decode one drift event against the plane's *live* state, so every
/// generated event is valid whatever the earlier events did to slot
/// counts. `(kind, msel, ssel, factor)` come from the proptest
/// strategy.
fn decode_event(
    plane: &ControlPlane,
    e: usize,
    kind: u32,
    msel: usize,
    ssel: usize,
    factor: f64,
) -> FleetEvent {
    let count = plane.machine_count();
    let mut m = msel % count;
    while plane.machine(m).tenant_count() == 0 {
        m = (m + 1) % count;
    }
    let tcount = plane.machine(m).tenant_count();
    let slot = ssel % tcount;
    let q = CYCLE[e % CYCLE.len()];
    match kind % 4 {
        0 => FleetEvent::WorkloadScaled {
            machine: m,
            slot,
            factor,
        },
        1 => FleetEvent::WorkloadChanged {
            machine: m,
            slot,
            workload: tpch::query_workload(q, 1.0 + factor).named(format!("drift-{e}-q{q}")),
        },
        2 if tcount > 1 => FleetEvent::TenantDeparted {
            machine: m,
            slot: tcount - 1,
        },
        _ => FleetEvent::TenantArrived {
            machine: msel % count,
            tenant: Box::new(
                Tenant::new(
                    format!("arrival-{e}-q{q}"),
                    Engine::db2(),
                    tpch::catalog(1.0),
                    tpch::query_workload(q, 1.0 + 0.125 * e as f64)
                        .named(format!("arrival-{e}-q{q}")),
                )
                .expect("bench workloads bind"),
            ),
            qos: QoS::default(),
        },
    }
}

/// The core contract check: drive an unbounded plane and a capped twin
/// through the same sequence in lockstep, comparing every decision
/// field the [`DecisionLog`](vda::core::DecisionLog) would record.
/// Returns the capped plane's eviction count so callers can also
/// assert that the cap actually bound.
fn check_capped_equals_uncapped(drifts: &[(u32, usize, usize, f64)], capacity: usize) -> u64 {
    let (machines, spaces) = fleet();
    let mut unbounded = ControlPlane::new(machines, spaces, options(0));
    let (machines, spaces) = fleet();
    let mut capped = ControlPlane::new(machines, spaces, options(capacity));

    for (e, &(kind, msel, ssel, factor)) in drifts.iter().enumerate() {
        // Decode against the unbounded plane; the twins' states match
        // step for step (that is the property under test), so the
        // event is valid for both.
        let event = decode_event(&unbounded, e, kind, msel, ssel, factor);
        let u = unbounded.process_event(event.clone());
        let c = capped.process_event(event);
        assert_eq!(c.action, u.action, "event {e}: actions diverge");
        assert_eq!(c.resolved, u.resolved, "event {e}: resolved sets diverge");
        assert_eq!(c.migration, u.migration, "event {e}: migrations diverge");
        assert_eq!(
            c.objective.to_bits(),
            u.objective.to_bits(),
            "event {e}: objective bits diverge"
        );
    }

    assert_eq!(
        capped.placements(),
        unbounded.placements(),
        "final placements diverge"
    );
    assert_eq!(
        capped.objective().to_bits(),
        unbounded.objective().to_bits(),
        "final objective bits diverge"
    );

    let u_stats = unbounded.stats();
    let c_stats = capped.stats();
    assert_eq!(u_stats.probe_evictions, 0, "unbounded cache must not evict");
    assert!(
        c_stats.probe_misses >= u_stats.probe_misses,
        "eviction can only add misses: capped {} vs unbounded {}",
        c_stats.probe_misses,
        u_stats.probe_misses
    );
    assert!(
        c_stats.probe_bytes <= u_stats.probe_bytes,
        "capped cache outgrew the unbounded one: {} vs {}",
        c_stats.probe_bytes,
        u_stats.probe_bytes
    );
    c_stats.probe_evictions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random drift sequences, random (small but nonzero) capacity:
    /// the capped plane's decisions are bit-identical to the
    /// unbounded twin's.
    #[test]
    fn capped_cache_decisions_are_bit_identical_across_random_drift_sequences(
        drifts in proptest::collection::vec(
            (0u32..4, 0usize..8, 0usize..8, 0.4f64..2.5),
            2..6,
        ),
        capacity in 1usize..64,
    ) {
        check_capped_equals_uncapped(&drifts, capacity);
    }
}

/// A fixed sequence against a cap tight enough that eviction is
/// guaranteed to bind — the deterministic anchor the random cases
/// cannot promise.
#[test]
fn a_binding_cap_evicts_without_changing_any_decision() {
    let drifts = [
        (0u32, 0usize, 1usize, 1.6f64),
        (1, 1, 0, 2.0),
        (0, 0, 0, 0.7),
        (1, 0, 1, 1.3),
        (3, 1, 0, 1.2),
        (0, 1, 1, 1.9),
    ];
    let evictions = check_capped_equals_uncapped(&drifts, 8);
    assert!(evictions > 0, "a cap of 8 rows must bind on this sequence");
}
