//! Property tests for coarse-to-fine enumeration: windowed refinement
//! must find the same δ-grid objective as the full-grid DP, across
//! random workload mixes and QoS/penalty regimes.

use proptest::prelude::*;
use vda::core::costmodel::{CostModel, FnCostModel};
use vda::core::enumerate::{
    coarse_to_fine_search_with, exhaustive_search, try_coarse_to_fine_search_with,
    try_exhaustive_search_with, CoarseToFineOptions, SearchOptions,
};
use vda::core::placement::{place_tenants, FleetOptions};
use vda::core::problem::{Allocation, QoS, SearchSpace};

/// Per-workload convex resource-cost coefficients (α for CPU, β for
/// memory, γ flat), the shape real DBMS workload costs take along
/// each resource axis.
fn coeffs(n: usize) -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    proptest::collection::vec((0.1f64..30.0, 0.1f64..30.0, 0.1f64..5.0), n)
}

/// Random QoS regimes: mixed gains, and degradation limits that are
/// sometimes absent, sometimes loose, sometimes tight.
fn qos_regimes(n: usize) -> impl Strategy<Value = Vec<QoS>> {
    proptest::collection::vec(
        (
            1.0f64..5.0,
            prop_oneof![Just(f64::INFINITY), boxed(1.3f64..4.0)],
        ),
        n,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .map(|(gain, limit)| QoS {
                gain,
                degradation_limit: limit,
            })
            .collect()
    })
}

/// Random QoS regimes with *every* degradation limit finite — the
/// regime the limit-aware windowed refinement exists for.
fn finite_qos_regimes(n: usize) -> impl Strategy<Value = Vec<QoS>> {
    proptest::collection::vec((1.0f64..5.0, 1.3f64..4.0), n).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(gain, limit)| QoS {
                gain,
                degradation_limit: limit,
            })
            .collect()
    })
}

fn models(coeffs: &[(f64, f64, f64)]) -> Vec<impl CostModel> {
    coeffs
        .iter()
        .map(|&(alpha, beta, gamma)| {
            FnCostModel::new(move |a: Allocation| alpha / a.cpu() + beta / a.memory() + gamma)
        })
        .collect()
}

fn boxed<S: Strategy + 'static>(s: S) -> proptest::BoxedStrategy<S::Value> {
    proptest::boxed(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CPU-only, fine δ = 0.05 (the paper's grid), N ≤ 6: the windowed
    /// refinement's objective equals the full-grid DP's within 1e-9,
    /// across random QoS/penalty regimes, and the two agree on every
    /// per-workload limit verdict (both searches report jointly
    /// infeasible limits best-effort via `limits_met` — `None` is
    /// reserved for grids that cannot host the workloads at all).
    #[test]
    fn cpu_only_refinement_matches_full_grid(
        cs in coeffs(6),
        qos in qos_regimes(6),
        n in 2usize..=6,
    ) {
        let space = SearchSpace::cpu_only(0.5); // δ = 0.05
        let cs = &cs[..n];
        let qos = &qos[..n];
        let models = models(cs);
        let opts = CoarseToFineOptions::auto(&space, n);
        prop_assert!(!opts.coarse_deltas.is_empty(), "auto must find a coarse level");
        let serial = SearchOptions::serial();
        let full = try_exhaustive_search_with(&space, qos, &models, &serial)
            .expect("δ = 0.05 hosts six workloads");
        let c2f = try_coarse_to_fine_search_with(&space, qos, &models, &opts, &serial)
            .expect("c2f is None only when exhaustive is");
        prop_assert!(
            (full.weighted_cost - c2f.weighted_cost).abs() <= 1e-9,
            "full {} vs c2f {} (n={n}, qos={qos:?})",
            full.weighted_cost,
            c2f.weighted_cost
        );
        prop_assert_eq!(&full.limits_met, &c2f.limits_met, "limit verdicts differ");
    }

    /// Joint CPU+memory grids agree too (N ≤ 4 keeps the full DP
    /// cheap enough for many cases).
    #[test]
    fn joint_grid_refinement_matches_full_grid(
        cs in coeffs(4),
        qos in qos_regimes(4),
        n in 2usize..=4,
    ) {
        let space = SearchSpace::cpu_and_memory(); // δ = 0.05
        let cs = &cs[..n];
        let qos = &qos[..n];
        let models = models(cs);
        let opts = CoarseToFineOptions::auto(&space, n);
        let serial = SearchOptions::serial();
        let full = try_exhaustive_search_with(&space, qos, &models, &serial)
            .expect("δ = 0.05 hosts four workloads");
        let c2f = try_coarse_to_fine_search_with(&space, qos, &models, &opts, &serial)
            .expect("c2f is None only when exhaustive is");
        prop_assert!(
            (full.weighted_cost - c2f.weighted_cost).abs() <= 1e-9,
            "full {} vs c2f {} (n={n}, cs={cs:?}, qos={qos:?})",
            full.weighted_cost,
            c2f.weighted_cost
        );
        prop_assert_eq!(&full.limits_met, &c2f.limits_met, "limit verdicts differ");
    }

    /// The tentpole regime: *every* limit finite, N ≤ 6, δ = 0.05.
    /// The limit-aware windowed path (boundary band + per-window
    /// escalation) must match the full grid's objective within 1e-9
    /// and agree on every `limits_met` flag.
    #[test]
    fn finite_limit_refinement_matches_full_grid(
        cs in coeffs(6),
        qos in finite_qos_regimes(6),
        n in 2usize..=6,
    ) {
        let space = SearchSpace::cpu_only(0.5); // δ = 0.05
        let cs = &cs[..n];
        let qos = &qos[..n];
        let models = models(cs);
        let opts = CoarseToFineOptions::auto(&space, n);
        let serial = SearchOptions::serial();
        let full = try_exhaustive_search_with(&space, qos, &models, &serial)
            .expect("δ = 0.05 hosts six workloads");
        let c2f = try_coarse_to_fine_search_with(&space, qos, &models, &opts, &serial)
            .expect("c2f is None only when exhaustive is");
        prop_assert!(
            (full.weighted_cost - c2f.weighted_cost).abs() <= 1e-9,
            "full {} vs c2f {} (n={n}, qos={qos:?})",
            full.weighted_cost,
            c2f.weighted_cost
        );
        prop_assert_eq!(&full.limits_met, &c2f.limits_met, "limit verdicts differ");
    }

    /// A finer fine grid (δ = 0.01) through a two-level ladder still
    /// matches the full-grid DP on unconstrained regimes.
    #[test]
    fn fine_delta_ladder_matches_full_grid(
        cs in coeffs(4),
        n in 2usize..=4,
    ) {
        let mut space = SearchSpace::cpu_only(0.5);
        space.set_delta(0.01);
        let cs = &cs[..n];
        let qos = vec![QoS::default(); n];
        let models = models(cs);
        let opts = CoarseToFineOptions {
            coarse_deltas: vec![0.1, 0.05],
            window_steps: 1.0,
        };
        let full = exhaustive_search(&space, &qos, &models);
        let c2f = coarse_to_fine_search_with(
            &space,
            &qos,
            &models,
            &opts,
            &SearchOptions::serial(),
        );
        prop_assert!(
            (full.weighted_cost - c2f.weighted_cost).abs() <= 1e-9,
            "full {} vs c2f {} (n={n})",
            full.weighted_cost,
            c2f.weighted_cost
        );
    }

    /// The two-level ladder down to δ = 0.01 also survives finite
    /// degradation limits: the limit-aware windows must track the
    /// boundary across *two* refinement hops and still land on the
    /// full-grid optimum with identical limit verdicts.
    #[test]
    fn fine_delta_ladder_matches_full_grid_under_limits(
        cs in coeffs(4),
        qos in finite_qos_regimes(4),
        n in 2usize..=4,
    ) {
        let mut space = SearchSpace::cpu_only(0.5);
        space.set_delta(0.01);
        let cs = &cs[..n];
        let qos = &qos[..n];
        let models = models(cs);
        let opts = CoarseToFineOptions {
            coarse_deltas: vec![0.1, 0.05],
            window_steps: 1.0,
        };
        let serial = SearchOptions::serial();
        let full = try_exhaustive_search_with(&space, qos, &models, &serial)
            .expect("δ = 0.01 hosts four workloads");
        let c2f = try_coarse_to_fine_search_with(&space, qos, &models, &opts, &serial)
            .expect("c2f is None only when exhaustive is");
        prop_assert!(
            (full.weighted_cost - c2f.weighted_cost).abs() <= 1e-9,
            "full {} vs c2f {} (n={n}, qos={qos:?})",
            full.weighted_cost,
            c2f.weighted_cost
        );
        prop_assert_eq!(&full.limits_met, &c2f.limits_met, "limit verdicts differ");
    }

    /// Fleet placement always produces a feasible fleet: every tenant
    /// assigned to a real machine, per-machine shares within budget,
    /// and capacity respected.
    #[test]
    fn placement_is_always_feasible(
        cs in coeffs(8),
        qos in qos_regimes(8),
        n in 2usize..=8,
        k in 2usize..=3,
    ) {
        let space = SearchSpace::cpu_only(0.5);
        let cs = &cs[..n];
        let qos = &qos[..n];
        let models = models(cs);
        let r = place_tenants(&space, qos, &models, &FleetOptions::for_machines(k));
        prop_assert!(r.assignment.iter().all(|&m| m < k));
        for m in 0..k {
            let tenants = r.tenants_on(m);
            if let Some(res) = &r.per_machine[m] {
                prop_assert_eq!(res.allocations.len(), tenants.len());
                let total: f64 = res.allocations.iter().map(|a| a.cpu()).sum();
                prop_assert!(total <= 1.0 + 1e-9, "machine {} oversubscribed: {}", m, total);
            } else {
                prop_assert!(tenants.is_empty());
            }
        }
    }
}

/// Regression for the jointly-infeasible panic: the non-`try_` grid
/// paths used to `.expect(...)` when no allocation satisfied every
/// degradation limit, while `greedy_search` reported the same
/// situation gracefully. All three searches must now agree: return a
/// best-effort allocation and flag the violation via `limits_met`.
#[test]
fn jointly_infeasible_limits_never_panic() {
    use vda::core::enumerate::{coarse_to_fine_search, exhaustive_search, greedy_search};
    let mut space = SearchSpace::cpu_only(0.5);
    space.set_delta(0.01);
    // Each workload needs essentially the whole machine to stay within
    // a 1.05× degradation of its solo cost.
    let cs = vec![(10.0, 0.0, 1.0), (10.0, 0.0, 1.0)];
    let models = models(&cs);
    let qos = vec![QoS::with_limit(1.05), QoS::with_limit(1.05)];
    let greedy = greedy_search(&space, &qos, &models);
    let full = exhaustive_search(&space, &qos, &models);
    let c2f = coarse_to_fine_search(&space, &qos, &models);
    for (name, r) in [("greedy", &greedy), ("exhaustive", &full), ("c2f", &c2f)] {
        assert!(
            r.limits_met.iter().any(|m| !m),
            "{name} must flag the infeasibility: {:?}",
            r.limits_met
        );
        let total: f64 = r.allocations.iter().map(|a| a.cpu()).sum();
        assert!(total <= 1.0 + 1e-9, "{name} oversubscribed: {total}");
    }
    // The grid paths agree with each other exactly.
    assert_eq!(c2f.limits_met, full.limits_met);
    assert!((c2f.weighted_cost - full.weighted_cost).abs() <= 1e-9);
}
