//! Property tests for coarse-to-fine enumeration: windowed refinement
//! must find the same δ-grid objective as the full-grid DP, across
//! random workload mixes and QoS/penalty regimes.

use proptest::prelude::*;
use vda::core::costmodel::{CostModel, FnCostModel};
use vda::core::enumerate::{
    coarse_to_fine_search_with, exhaustive_search, try_coarse_to_fine_search_with,
    try_exhaustive_search_with, CoarseToFineOptions, SearchOptions,
};
use vda::core::placement::{place_tenants, FleetOptions};
use vda::core::problem::{Allocation, QoS, SearchSpace};

/// Per-workload convex resource-cost coefficients (α for CPU, β for
/// memory, γ flat), the shape real DBMS workload costs take along
/// each resource axis.
fn coeffs(n: usize) -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    proptest::collection::vec((0.1f64..30.0, 0.1f64..30.0, 0.1f64..5.0), n)
}

/// Random QoS regimes: mixed gains, and degradation limits that are
/// sometimes absent, sometimes loose, sometimes tight.
fn qos_regimes(n: usize) -> impl Strategy<Value = Vec<QoS>> {
    proptest::collection::vec(
        (
            1.0f64..5.0,
            prop_oneof![Just(f64::INFINITY), boxed(1.3f64..4.0)],
        ),
        n,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .map(|(gain, limit)| QoS {
                gain,
                degradation_limit: limit,
            })
            .collect()
    })
}

fn models(coeffs: &[(f64, f64, f64)]) -> Vec<impl CostModel> {
    coeffs
        .iter()
        .map(|&(alpha, beta, gamma)| {
            FnCostModel::new(move |a: Allocation| alpha / a.cpu + beta / a.memory + gamma)
        })
        .collect()
}

fn boxed<S: Strategy + 'static>(s: S) -> proptest::BoxedStrategy<S::Value> {
    proptest::boxed(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CPU-only, fine δ = 0.05 (the paper's grid), N ≤ 6: the windowed
    /// refinement's objective equals the full-grid DP's within 1e-9,
    /// across random QoS/penalty regimes. Jointly infeasible limits
    /// must be reported identically (both `None`).
    #[test]
    fn cpu_only_refinement_matches_full_grid(
        cs in coeffs(6),
        qos in qos_regimes(6),
        n in 2usize..=6,
    ) {
        let space = SearchSpace::cpu_only(0.5); // δ = 0.05
        let cs = &cs[..n];
        let qos = &qos[..n];
        let models = models(cs);
        let opts = CoarseToFineOptions::auto(&space, n);
        prop_assert!(!opts.coarse_deltas.is_empty(), "auto must find a coarse level");
        let serial = SearchOptions::serial();
        let full = try_exhaustive_search_with(&space, qos, &models, &serial);
        let c2f = try_coarse_to_fine_search_with(&space, qos, &models, &opts, &serial);
        match (&full, &c2f) {
            (None, None) => {}
            (Some(f), Some(c)) => prop_assert!(
                (f.weighted_cost - c.weighted_cost).abs() <= 1e-9,
                "full {} vs c2f {} (n={n}, qos={qos:?})",
                f.weighted_cost,
                c.weighted_cost
            ),
            _ => prop_assert!(false, "feasibility verdicts differ: {full:?} vs {c2f:?}"),
        }
    }

    /// Joint CPU+memory grids agree too (N ≤ 4 keeps the full DP
    /// cheap enough for many cases).
    #[test]
    fn joint_grid_refinement_matches_full_grid(
        cs in coeffs(4),
        qos in qos_regimes(4),
        n in 2usize..=4,
    ) {
        let space = SearchSpace::cpu_and_memory(); // δ = 0.05
        let cs = &cs[..n];
        let qos = &qos[..n];
        let models = models(cs);
        let opts = CoarseToFineOptions::auto(&space, n);
        let serial = SearchOptions::serial();
        let full = try_exhaustive_search_with(&space, qos, &models, &serial);
        let c2f = try_coarse_to_fine_search_with(&space, qos, &models, &opts, &serial);
        match (&full, &c2f) {
            (None, None) => {}
            (Some(f), Some(c)) => prop_assert!(
                (f.weighted_cost - c.weighted_cost).abs() <= 1e-9,
                "full {} vs c2f {} (n={n}, cs={cs:?}, qos={qos:?})",
                f.weighted_cost,
                c.weighted_cost
            ),
            _ => prop_assert!(false, "feasibility verdicts differ"),
        }
    }

    /// A finer fine grid (δ = 0.01) through a two-level ladder still
    /// matches the full-grid DP on unconstrained regimes.
    #[test]
    fn fine_delta_ladder_matches_full_grid(
        cs in coeffs(4),
        n in 2usize..=4,
    ) {
        let mut space = SearchSpace::cpu_only(0.5);
        space.delta = 0.01;
        let cs = &cs[..n];
        let qos = vec![QoS::default(); n];
        let models = models(cs);
        let opts = CoarseToFineOptions {
            coarse_deltas: vec![0.1, 0.05],
            window_steps: 1.0,
        };
        let full = exhaustive_search(&space, &qos, &models);
        let c2f = coarse_to_fine_search_with(
            &space,
            &qos,
            &models,
            &opts,
            &SearchOptions::serial(),
        );
        prop_assert!(
            (full.weighted_cost - c2f.weighted_cost).abs() <= 1e-9,
            "full {} vs c2f {} (n={n})",
            full.weighted_cost,
            c2f.weighted_cost
        );
    }

    /// Fleet placement always produces a feasible fleet: every tenant
    /// assigned to a real machine, per-machine shares within budget,
    /// and capacity respected.
    #[test]
    fn placement_is_always_feasible(
        cs in coeffs(8),
        qos in qos_regimes(8),
        n in 2usize..=8,
        k in 2usize..=3,
    ) {
        let space = SearchSpace::cpu_only(0.5);
        let cs = &cs[..n];
        let qos = &qos[..n];
        let models = models(cs);
        let r = place_tenants(&space, qos, &models, &FleetOptions::for_machines(k));
        prop_assert!(r.assignment.iter().all(|&m| m < k));
        for m in 0..k {
            let tenants = r.tenants_on(m);
            if let Some(res) = &r.per_machine[m] {
                prop_assert_eq!(res.allocations.len(), tenants.len());
                let total: f64 = res.allocations.iter().map(|a| a.cpu).sum();
                prop_assert!(total <= 1.0 + 1e-9, "machine {} oversubscribed: {}", m, total);
            } else {
                prop_assert!(tenants.is_empty());
            }
        }
    }
}
