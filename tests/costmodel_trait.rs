//! Integration tests of the unified `CostModel` layer: mixed-engine
//! advisors, greedy-vs-exhaustive agreement, and the parallel/serial
//! equivalence contract of the enumeration batch evaluator.

use vda::core::costmodel::{CostModel, SharedEstimateCache, WhatIfEstimator};
use vda::core::enumerate::{exhaustive_search_with, greedy_search_with, SearchOptions};
use vda::core::metrics::CostAccounting;
use vda::core::problem::{Allocation, QoS, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::tpch;

/// A pgsim tenant and a db2sim tenant consolidated on one machine.
fn mixed_engine_advisor() -> VirtualizationDesignAdvisor {
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut adv = VirtualizationDesignAdvisor::new(hv);
    let cat = tpch::catalog(1.0);
    adv.add_tenant(
        Tenant::new(
            "pg-cpu",
            Engine::pg(),
            cat.clone(),
            tpch::query_workload(18, 2.0),
        )
        .unwrap(),
        QoS::default(),
    );
    adv.add_tenant(
        Tenant::new("db2-scan", Engine::db2(), cat, tpch::query_workload(6, 2.0)).unwrap(),
        QoS::default(),
    );
    adv.calibrate();
    adv
}

#[test]
fn mixed_engines_greedy_agrees_with_exhaustive() {
    let adv = mixed_engine_advisor();
    let space = SearchSpace::cpu_only(0.5);
    let greedy = adv.recommend(&space);
    let exact = adv.recommend_exhaustive(&space);
    // §4.5/§7.6: greedy is very often optimal, always within 5 %.
    assert!(
        greedy.result.weighted_cost <= exact.result.weighted_cost * 1.05 + 1e-9,
        "greedy {} vs optimal {}",
        greedy.result.weighted_cost,
        exact.result.weighted_cost
    );
    // Costs are renormalized to seconds, so the cross-engine sum is
    // meaningful and the budget holds.
    let total: f64 = greedy.result.allocations.iter().map(|a| a.cpu()).sum();
    assert!(total <= 1.0 + 1e-9);
}

/// Fresh estimators over private shared caches, so optimizer-call
/// counters start at zero for each enumeration run.
fn fresh_estimators(adv: &VirtualizationDesignAdvisor) -> Vec<WhatIfEstimator<'_>> {
    (0..adv.tenant_count())
        .map(|i| {
            WhatIfEstimator::with_shared_cache(
                adv.tenant(i),
                adv.model(i),
                SharedEstimateCache::new(),
            )
        })
        .collect()
}

#[test]
fn parallel_and_serial_enumeration_are_identical_with_real_estimators() {
    let adv = mixed_engine_advisor();
    let space = SearchSpace::cpu_only(0.5);
    let qos = adv.qos().to_vec();

    let serial_models = fresh_estimators(&adv);
    let serial = greedy_search_with(&space, &qos, &serial_models, &SearchOptions::serial());
    let serial_calls = CostAccounting::tally(&serial_models);

    let parallel_models = fresh_estimators(&adv);
    let parallel = greedy_search_with(&space, &qos, &parallel_models, &SearchOptions::parallel());
    let parallel_calls = CostAccounting::tally(&parallel_models);

    assert_eq!(
        serial, parallel,
        "parallel greedy must be bit-identical to serial"
    );
    assert_eq!(
        serial_calls, parallel_calls,
        "optimizer-call accounting must not depend on threading"
    );
    assert!(serial_calls.optimizer_calls > 0);
}

#[test]
fn parallel_and_serial_exhaustive_are_identical_with_real_estimators() {
    let adv = mixed_engine_advisor();
    let space = SearchSpace::cpu_only(0.5);
    let qos = adv.qos().to_vec();

    let serial_models = fresh_estimators(&adv);
    let serial = exhaustive_search_with(&space, &qos, &serial_models, &SearchOptions::serial());
    let serial_calls = CostAccounting::tally(&serial_models);

    let parallel_models = fresh_estimators(&adv);
    let parallel =
        exhaustive_search_with(&space, &qos, &parallel_models, &SearchOptions::parallel());
    let parallel_calls = CostAccounting::tally(&parallel_models);

    assert_eq!(serial, parallel);
    assert_eq!(serial_calls, parallel_calls);
}

#[test]
fn advisor_parallel_and_serial_recommendations_match() {
    let space = SearchSpace::cpu_only(0.5);
    let mut serial_adv = mixed_engine_advisor();
    serial_adv.set_search_options(SearchOptions::serial());
    let mut parallel_adv = mixed_engine_advisor();
    parallel_adv.set_search_options(SearchOptions::parallel());

    let serial = serial_adv.recommend(&space);
    let parallel = parallel_adv.recommend(&space);
    assert_eq!(serial.result, parallel.result);
    assert_eq!(serial.optimizer_calls, parallel.optimizer_calls);
}

#[test]
fn heterogeneous_model_sets_enumerate_through_dyn() {
    // The trait layer accepts heterogeneous model sets: a real what-if
    // estimator next to the executor oracle for the other tenant.
    let adv = mixed_engine_advisor();
    let space = SearchSpace::cpu_only(0.5);
    let est = adv.estimator(0);
    let actuals = adv.actual_models();
    let models: Vec<&dyn CostModel> = vec![&est, &actuals[1]];
    let r = vda::core::enumerate::greedy_search(&space, adv.qos(), &models);
    let total: f64 = r.allocations.iter().map(|a| a.cpu()).sum();
    assert!(total <= 1.0 + 1e-9);
    assert!(r.limits_met.iter().all(|&m| m));
}

#[test]
fn swap_regression_mixed_engines_survive_dynamic_management() {
    // §7.10 with mixed engines end-to-end: swapping the tenants must
    // keep estimates attached to their workloads and leave the
    // dynamic manager with a feasible, calibrated advisor.
    let mut adv = mixed_engine_advisor();
    let space = SearchSpace::cpu_only(0.5);
    let a = Allocation::new(0.5, 0.5);
    let pre_pg = adv.estimator(0).cost(a);
    let pre_db2 = adv.estimator(1).cost(a);

    adv.swap_tenants(0, 1);
    assert!(adv.is_calibrated());
    assert_eq!(adv.estimator(0).cost(a), pre_db2);
    assert_eq!(adv.estimator(1).cost(a), pre_pg);

    let rec = adv.recommend(&space);
    let total: f64 = rec.result.allocations.iter().map(|x| x.cpu()).sum();
    assert!(total <= 1.0 + 1e-9);
}
