//! End-to-end integration tests: the full §4 pipeline (calibrate →
//! what-if → greedy search) over the simulated substrate.

use vda::core::problem::{Allocation, QoS, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::tpch;

fn advisor(workloads: Vec<(usize, f64)>, engine: Engine) -> VirtualizationDesignAdvisor {
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut adv = VirtualizationDesignAdvisor::new(hv);
    let cat = tpch::catalog(1.0);
    for (q, count) in workloads {
        adv.add_tenant(
            Tenant::new(
                format!("q{q}"),
                engine.clone(),
                cat.clone(),
                tpch::query_workload(q, count),
            )
            .expect("workload binds"),
            QoS::default(),
        );
    }
    adv.calibrate();
    adv
}

#[test]
fn cpu_heavy_tenant_wins_cpu_on_both_engines() {
    for engine in [Engine::pg(), Engine::db2()] {
        let adv = advisor(vec![(18, 2.0), (21, 1.0)], engine.clone());
        let space = SearchSpace::cpu_only(0.25);
        let rec = adv.recommend(&space);
        assert!(
            rec.result.allocations[0].cpu() > rec.result.allocations[1].cpu(),
            "{:?}: Q18 should out-demand Q21 on CPU: {:?}",
            engine.kind(),
            rec.result.allocations
        );
    }
}

#[test]
fn recommendation_never_hurts_actual_performance() {
    let adv = advisor(vec![(18, 2.0), (6, 3.0), (17, 1.0)], Engine::db2());
    let space = SearchSpace::cpu_only(0.25);
    let rec = adv.recommend(&space);
    let improvement = adv.actual_improvement(&space, &rec.result.allocations);
    assert!(
        improvement > -0.05,
        "advisor made things materially worse: {improvement}"
    );
}

#[test]
fn allocations_always_feasible() {
    let adv = advisor(vec![(1, 1.0), (6, 2.0), (18, 1.0), (3, 1.0)], Engine::pg());
    for space in [
        SearchSpace::cpu_only(0.2),
        SearchSpace::memory_only(0.5),
        SearchSpace::cpu_and_memory(),
    ] {
        let rec = adv.recommend(&space);
        let cpu: f64 = rec.result.allocations.iter().map(|a| a.cpu()).sum();
        let mem: f64 = rec.result.allocations.iter().map(|a| a.memory()).sum();
        if space.is_varied(vda::core::problem::Resource::Cpu) {
            assert!(cpu <= 1.0 + 1e-9, "CPU oversubscribed: {cpu}");
        }
        if space.is_varied(vda::core::problem::Resource::Memory) {
            assert!(mem <= 1.0 + 1e-9, "memory oversubscribed: {mem}");
        }
        for a in &rec.result.allocations {
            assert!(a.is_valid(), "invalid allocation {a:?}");
        }
    }
}

#[test]
fn greedy_within_five_percent_of_exhaustive() {
    // The §4.5 claim, checked end-to-end over mixed workloads.
    let adv = advisor(vec![(18, 2.0), (21, 1.0), (6, 3.0)], Engine::db2());
    let space = SearchSpace::cpu_only(0.25);
    let greedy = adv.recommend(&space);
    let exact = adv.recommend_exhaustive(&space);
    assert!(
        greedy.result.weighted_cost <= exact.result.weighted_cost * 1.05 + 1e-9,
        "greedy {} vs optimal {}",
        greedy.result.weighted_cost,
        exact.result.weighted_cost
    );
}

#[test]
fn estimates_track_actuals_for_read_only_workloads() {
    let adv = advisor(vec![(6, 2.0)], Engine::pg());
    for &(c, m) in &[(0.2, 0.3), (0.5, 0.5), (0.9, 0.7)] {
        let alloc = Allocation::new(c, m);
        let est = adv.estimator(0).cost(alloc);
        let act = adv.actual_cost(0, alloc);
        let err = (est - act).abs() / act;
        assert!(err < 0.1, "estimate off by {err} at {alloc:?}");
    }
}

#[test]
fn mixed_engine_costs_are_comparable_after_renormalization() {
    // §4.2: the whole point of renormalization — a PgSim second and a
    // Db2Sim second mean the same thing. Identical workloads on the
    // two engines must get estimates within a factor reflecting their
    // real speed difference, not their unit difference (timerons are
    // ~13 per ms, sequential-page units ~4600 per second).
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut adv = VirtualizationDesignAdvisor::new(hv);
    let cat = tpch::catalog(1.0);
    for engine in [Engine::pg(), Engine::db2()] {
        adv.add_tenant(
            Tenant::new(
                engine.kind().name(),
                engine.clone(),
                cat.clone(),
                tpch::query_workload(1, 1.0),
            )
            .expect("binds"),
            QoS::default(),
        );
    }
    adv.calibrate();
    let a = Allocation::new(0.5, 0.5);
    let pg = adv.estimator(0).cost(a);
    let db2 = adv.estimator(1).cost(a);
    let ratio = pg / db2;
    assert!(
        (0.5..2.0).contains(&ratio),
        "renormalized costs incomparable: pg {pg}s vs db2 {db2}s"
    );
}

#[test]
fn degradation_limits_hold_end_to_end() {
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut adv = VirtualizationDesignAdvisor::new(hv);
    let cat = tpch::catalog(1.0);
    for (i, qos) in [QoS::with_limit(2.0), QoS::default(), QoS::default()]
        .into_iter()
        .enumerate()
    {
        adv.add_tenant(
            Tenant::new(
                format!("t{i}"),
                Engine::db2(),
                cat.clone(),
                tpch::query_workload(18, 1.0),
            )
            .expect("binds"),
            qos,
        );
    }
    adv.calibrate();
    let space = SearchSpace::cpu_only(0.25);
    let rec = adv.recommend(&space);
    assert!(rec.result.limits_met[0], "limit violated: {:?}", rec.result);
    let solo = adv.estimator(0).cost(space.solo_allocation());
    assert!(rec.result.costs[0] <= 2.0 * solo + 1e-6);
}

#[test]
fn gain_factor_pulls_resources() {
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut adv = VirtualizationDesignAdvisor::new(hv);
    let cat = tpch::catalog(1.0);
    for (i, qos) in [QoS::with_gain(6.0), QoS::default(), QoS::default()]
        .into_iter()
        .enumerate()
    {
        adv.add_tenant(
            Tenant::new(
                format!("t{i}"),
                Engine::db2(),
                cat.clone(),
                tpch::query_workload(18, 1.0),
            )
            .expect("binds"),
            qos,
        );
    }
    adv.calibrate();
    let rec = adv.recommend(&SearchSpace::cpu_only(0.25));
    assert!(
        rec.result.allocations[0].cpu() > rec.result.allocations[1].cpu(),
        "gain factor ignored: {:?}",
        rec.result.allocations
    );
}
