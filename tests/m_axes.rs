//! M-axis equivalence pins.
//!
//! Two contracts guard the `ResourceVector` redesign:
//!
//! 1. **Legacy pin** — the M-axis DP restricted to the paper's
//!    `{Cpu, Memory}` axes reproduces the historical 2-axis
//!    implementation **bit-identically**: objectives, allocations,
//!    per-workload costs, `limits_met`, *and* optimizer-call counts,
//!    across random QoS/penalty regimes. The reference below is a
//!    frozen copy of the pre-redesign `grid_search` (hard-coded
//!    `(cpu units, memory units)` tuples, the same lexicographic DP
//!    and reconstruction, the same batch-level probe accounting).
//! 2. **3-axis ≡ full grid** — with the disk axis open, the exact
//!    M-axis DP equals brute-force composition enumeration, and
//!    coarse-to-fine refinement equals the full-grid DP, at small N.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use vda::core::costmodel::FnCostModel;
use vda::core::enumerate::{
    coarse_to_fine_search_with, exhaustive_search_with, CoarseToFineOptions, SearchOptions,
};
use vda::core::problem::{Allocation, AxisSet, QoS, Resource, ResourceVector, SearchSpace};

// ---------------------------------------------------------------------
// The frozen legacy 2-axis reference.
// ---------------------------------------------------------------------

/// The legacy search-space description: two hard-coded axes.
#[derive(Clone, Copy)]
struct LegacySpace {
    vary_cpu: bool,
    vary_memory: bool,
    fixed: (f64, f64),
    delta: f64,
    min_share: f64,
}

/// What the legacy DP returned (trace fields omitted — exhaustive
/// search never produced them).
struct LegacyOutcome {
    weighted_cost: f64,
    allocations: Vec<(f64, f64)>,
    costs: Vec<f64>,
    limits_met: Vec<bool>,
    /// Cost-function invocations, replicating the batch evaluator's
    /// per-batch (workload, allocation) dedup.
    calls: u64,
}

/// Frozen copy of the pre-redesign full-grid DP (`grid_search` with
/// `allowed = None`): per-workload option tables over the
/// `(cpu units, memory units)` product range, a lexicographic
/// (unmet limits, weighted cost) DP over the 2-D remaining-budget
/// lattice, and greedy reconstruction by re-derivation.
fn legacy_exhaustive(
    space: &LegacySpace,
    qos: &[QoS],
    cost: &dyn Fn(usize, f64, f64) -> f64,
) -> Option<LegacyOutcome> {
    const LIMIT_EPS: f64 = 1e-9;
    let within_limit = |c: f64, limit: f64, full: f64| -> bool { c <= limit * full + LIMIT_EPS };
    let n = qos.len();
    let mut calls = 0u64;

    let units_total = (1.0 / space.delta).round() as usize;
    let min_units = (space.min_share / space.delta).round().max(1.0) as usize;
    if units_total < n * min_units {
        return None;
    }
    let (min_units, max_units) = (min_units, units_total - (n - 1) * min_units);
    let delta = space.delta;

    let solo = (
        if space.vary_cpu { 1.0 } else { space.fixed.0 },
        if space.vary_memory {
            1.0
        } else {
            space.fixed.1
        },
    );
    let full_cost: Vec<f64> = (0..n)
        .map(|i| {
            calls += 1;
            cost(i, solo.0, solo.1)
        })
        .collect();

    let vary_cpu = space.vary_cpu;
    let vary_mem = space.vary_memory;
    let cpu_budget = if vary_cpu { units_total } else { 0 };
    let mem_budget = if vary_mem { units_total } else { 0 };

    let alloc_for = |cu: usize, mu: usize| -> (f64, f64) {
        (
            if vary_cpu {
                cu as f64 * delta
            } else {
                space.fixed.0
            },
            if vary_mem {
                mu as f64 * delta
            } else {
                space.fixed.1
            },
        )
    };

    // Full product cells, cpu-major ascending (the legacy
    // `product_cells` order).
    let cpu_axis: Vec<usize> = if vary_cpu {
        (min_units..=max_units).collect()
    } else {
        vec![0]
    };
    let mem_axis: Vec<usize> = if vary_mem {
        (min_units..=max_units).collect()
    } else {
        vec![0]
    };
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for &cu in &cpu_axis {
        for &mu in &mem_axis {
            cells.push((cu, mu));
        }
    }

    struct Cell {
        units: (usize, usize),
        cost: f64,
        weighted: f64,
        within_limit: bool,
    }
    let tables: Vec<Vec<Cell>> = (0..n)
        .map(|i| {
            cells
                .iter()
                .map(|&(cu, mu)| {
                    let (c, m) = alloc_for(cu, mu);
                    calls += 1;
                    let v = cost(i, c, m);
                    Cell {
                        units: (cu, mu),
                        cost: v,
                        weighted: qos[i].gain * v,
                        within_limit: within_limit(v, qos[i].degradation_limit, full_cost[i]),
                    }
                })
                .collect()
        })
        .collect();

    const UNREACHABLE: (u32, f64) = (u32::MAX, f64::INFINITY);
    let lex_less = |a: (u32, f64), b: (u32, f64)| a.0 < b.0 || (a.0 == b.0 && a.1 < b.1);
    let width = cpu_budget + 1;
    let height = mem_budget + 1;
    let idx = |c: usize, m: usize| c * height + m;
    let mut next: Vec<(u32, f64)> = vec![(0, 0.0); width * height];
    let mut layers: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n + 1);
    layers.push(next.clone());
    for i in (0..n).rev() {
        let mut cur = vec![UNREACHABLE; width * height];
        for c_left in 0..width {
            for m_left in 0..height {
                let mut best = UNREACHABLE;
                for cell in &tables[i] {
                    let (cu, mu) = cell.units;
                    let cu_eff = if vary_cpu { cu } else { 0 };
                    let mu_eff = if vary_mem { mu } else { 0 };
                    if cu_eff <= c_left && mu_eff <= m_left {
                        let rest = next[idx(c_left - cu_eff, m_left - mu_eff)];
                        if rest.0 == u32::MAX {
                            continue;
                        }
                        let v = (
                            rest.0 + u32::from(!cell.within_limit),
                            cell.weighted + rest.1,
                        );
                        if lex_less(v, best) {
                            best = v;
                        }
                    }
                }
                cur[idx(c_left, m_left)] = best;
            }
        }
        layers.push(cur.clone());
        next = cur;
    }
    layers.reverse();

    if layers[0][idx(cpu_budget, mem_budget)].0 == u32::MAX {
        return None;
    }

    let mut c_left = cpu_budget;
    let mut m_left = mem_budget;
    let mut weighted_cost = 0.0;
    let mut allocations = Vec::with_capacity(n);
    let mut costs = Vec::with_capacity(n);
    let mut limits_met = Vec::with_capacity(n);
    let mut chosen_weighted = Vec::with_capacity(n);
    for i in 0..n {
        let target = layers[i][idx(c_left, m_left)];
        let mut found = false;
        for cell in &tables[i] {
            let (cu, mu) = cell.units;
            let cu_eff = if vary_cpu { cu } else { 0 };
            let mu_eff = if vary_mem { mu } else { 0 };
            if cu_eff <= c_left && mu_eff <= m_left {
                let rest = layers[i + 1][idx(c_left - cu_eff, m_left - mu_eff)];
                if rest.0 == u32::MAX {
                    continue;
                }
                let v = (
                    rest.0 + u32::from(!cell.within_limit),
                    cell.weighted + rest.1,
                );
                if v.0 == target.0 && (v.1 - target.1).abs() <= 1e-9 * target.1.abs().max(1.0) {
                    allocations.push(alloc_for(cu, mu));
                    costs.push(cell.cost);
                    limits_met.push(cell.within_limit);
                    chosen_weighted.push(cell.weighted);
                    c_left -= cu_eff;
                    m_left -= mu_eff;
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "legacy reconstruction must find the chosen option");
    }
    for w in chosen_weighted {
        weighted_cost += w;
    }
    Some(LegacyOutcome {
        weighted_cost,
        allocations,
        costs,
        limits_met,
        calls,
    })
}

// ---------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------

fn coeffs(n: usize) -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    proptest::collection::vec((0.1f64..30.0, 0.1f64..30.0, 0.1f64..5.0), n)
}

fn qos_regimes(n: usize) -> impl Strategy<Value = Vec<QoS>> {
    proptest::collection::vec(
        (
            1.0f64..5.0,
            prop_oneof![Just(f64::INFINITY), proptest::boxed(1.3f64..4.0)],
        ),
        n,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .map(|(gain, limit)| QoS {
                gain,
                degradation_limit: limit,
            })
            .collect()
    })
}

/// Which of the two legacy axes vary: cpu-only, memory-only, or both.
fn legacy_axes() -> impl Strategy<Value = (bool, bool)> {
    prop_oneof![Just((true, false)), Just((false, true)), Just((true, true))]
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The M-axis DP restricted to {Cpu, Memory} IS the legacy 2-axis
    /// DP: same objective, allocations, per-workload costs, limit
    /// verdicts, and optimizer-call counts — bit for bit.
    #[test]
    fn m_axis_dp_reproduces_legacy_two_axis_dp_bit_identically(
        coeffs in coeffs(4),
        qos in qos_regimes(4),
        n in 1usize..=4,
        (vary_cpu, vary_memory) in legacy_axes(),
        delta in prop_oneof![Just(0.25), Just(0.2), Just(0.1)],
        fixed_cpu in 0.2f64..1.0,
        fixed_mem in 0.2f64..1.0,
    ) {
        let coeffs = &coeffs[..n];
        let qos = &qos[..n];

        // Legacy side: tuples all the way down.
        let legacy_space = LegacySpace {
            vary_cpu,
            vary_memory,
            fixed: (fixed_cpu, fixed_mem),
            delta,
            min_share: 0.05,
        };
        let legacy_coeffs = coeffs.to_vec();
        let legacy_cost = move |i: usize, cpu: f64, mem: f64| -> f64 {
            let (a, b, c) = legacy_coeffs[i];
            a / cpu + b / mem + c
        };
        let legacy = legacy_exhaustive(&legacy_space, qos, &legacy_cost);

        // M-axis side: the same problem through the vector API.
        let mut axes = AxisSet::EMPTY;
        if vary_cpu {
            axes = axes.with(Resource::Cpu);
        }
        if vary_memory {
            axes = axes.with(Resource::Memory);
        }
        let mut space = SearchSpace::over(axes, ResourceVector::new(fixed_cpu, fixed_mem));
        space.set_delta(delta);
        space.min_share = 0.05;
        let calls = AtomicU64::new(0);
        let models: Vec<_> = coeffs
            .iter()
            .map(|&(a, b, c)| {
                let calls = &calls;
                FnCostModel::new(move |alloc: Allocation| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    a / alloc.cpu() + b / alloc.memory() + c
                })
            })
            .collect();
        let units_total = (1.0 / delta).round() as usize;
        let min_units = (0.05f64 / delta).round().max(1.0) as usize;
        if units_total < n * min_units {
            prop_assert!(legacy.is_none());
        } else {
            let new = exhaustive_search_with(&space, qos, &models, &SearchOptions::serial());
            let legacy = legacy.expect("grid hosts the workloads");

            // Bit-identical, not approximately equal.
            prop_assert_eq!(new.weighted_cost, legacy.weighted_cost);
            prop_assert_eq!(&new.costs, &legacy.costs);
            prop_assert_eq!(&new.limits_met, &legacy.limits_met);
            for (a, &(cpu, mem)) in new.allocations.iter().zip(&legacy.allocations) {
                prop_assert_eq!(a.cpu(), cpu);
                prop_assert_eq!(a.memory(), mem);
                // The compat default on the axes the legacy API never
                // had.
                prop_assert_eq!(a.disk(), 1.0);
            }
            prop_assert_eq!(calls.load(Ordering::Relaxed), legacy.calls);
        }
    }

    /// With the disk axis open, the exact M-axis DP and coarse-to-fine
    /// refinement agree with the full grid at small N across random
    /// QoS/penalty regimes (objective within 1e-9 and identical limit
    /// verdicts).
    #[test]
    fn three_axis_c2f_equals_full_grid(
        coeffs in proptest::collection::vec(
            (0.1f64..30.0, 0.1f64..30.0, 0.1f64..30.0, 0.1f64..5.0), 3),
        qos in qos_regimes(3),
        n in 2usize..=3,
    ) {
        let coeffs = &coeffs[..n];
        let qos = &qos[..n];
        let mut space = SearchSpace::cpu_memory_disk();
        space.set_delta(0.05);
        space.min_share = 0.25;
        let models: Vec<_> = coeffs
            .iter()
            .map(|&(a, b, d, c)| {
                FnCostModel::new(move |alloc: Allocation| {
                    a / alloc.cpu() + b / alloc.memory() + d / alloc.disk() + c
                })
            })
            .collect();
        let full = exhaustive_search_with(&space, qos, &models, &SearchOptions::serial());
        let c2f = coarse_to_fine_search_with(
            &space,
            qos,
            &models,
            &CoarseToFineOptions::auto(&space, models.len()),
            &SearchOptions::serial(),
        );
        prop_assert!(
            (c2f.weighted_cost - full.weighted_cost).abs()
                <= 1e-9 * full.weighted_cost.abs().max(1.0),
            "c2f {} vs full {}",
            c2f.weighted_cost,
            full.weighted_cost
        );
        prop_assert_eq!(&c2f.limits_met, &full.limits_met);
        for res in [Resource::Cpu, Resource::Memory, Resource::DiskBandwidth] {
            let sum: f64 = c2f.allocations.iter().map(|a| a.get(res)).sum();
            prop_assert!(sum <= 1.0 + 1e-9, "{:?} oversubscribed: {}", res, sum);
        }
    }
}

/// The 3-axis coarse ladder is non-trivial in the proptest regime at
/// n = 2 (at n = 3 the auto heuristic correctly finds no coarse grid
/// with enough options and falls back to the full grid — also a valid
/// equivalence case, just not a windowed one).
#[test]
fn three_axis_proptest_regime_has_a_real_coarse_ladder() {
    let mut space = SearchSpace::cpu_memory_disk();
    space.set_delta(0.05);
    space.min_share = 0.25;
    let opts = CoarseToFineOptions::auto(&space, 2);
    assert!(!opts.coarse_deltas.is_empty(), "auto ladder empty at n=2");
}

/// A deterministic three-tenant 3-axis case in a regime where the
/// coarse ladder is real ([0.1]), so windowed 3-D refinement itself —
/// not the full-grid fallback — is exercised against the full grid.
#[test]
fn three_axis_windowed_refinement_matches_full_grid_at_n3() {
    let mut space = SearchSpace::cpu_memory_disk();
    space.set_delta(0.05);
    space.min_share = 0.2;
    let opts = CoarseToFineOptions::auto(&space, 3);
    assert_eq!(opts.coarse_deltas, vec![0.1], "regime must have a ladder");
    let coeffs = [(12.0, 2.0, 5.0), (2.0, 9.0, 1.0), (4.0, 4.0, 15.0)];
    let models: Vec<_> = coeffs
        .iter()
        .map(|&(a, b, d)| {
            FnCostModel::new(move |alloc: Allocation| {
                a / alloc.cpu() + b / alloc.memory() + d / alloc.disk() + 1.0
            })
        })
        .collect();
    let qos = vec![QoS::with_limit(2.5), QoS::default(), QoS::with_gain(2.0)];
    let full = exhaustive_search_with(&space, &qos, &models, &SearchOptions::serial());
    let c2f = coarse_to_fine_search_with(&space, &qos, &models, &opts, &SearchOptions::serial());
    assert!(
        (c2f.weighted_cost - full.weighted_cost).abs() <= 1e-9 * full.weighted_cost.abs().max(1.0),
        "c2f {} vs full {}",
        c2f.weighted_cost,
        full.weighted_cost
    );
    assert_eq!(c2f.limits_met, full.limits_met);
}

/// Belt-and-braces for the legacy pin: one deterministic scenario with
/// binding limits, checked end to end (so a proptest shrink can never
/// hide a systematic mismatch).
#[test]
fn legacy_pin_holds_on_a_binding_limit_scenario() {
    let qos = vec![QoS::with_limit(1.5), QoS::default(), QoS::with_gain(3.0)];
    let legacy_space = LegacySpace {
        vary_cpu: true,
        vary_memory: true,
        fixed: (1.0, 1.0),
        delta: 0.1,
        min_share: 0.05,
    };
    let coeffs = [(9.0, 2.0, 1.0), (3.0, 7.0, 0.5), (1.0, 1.0, 2.0)];
    let legacy_cost =
        move |i: usize, cpu: f64, mem: f64| coeffs[i].0 / cpu + coeffs[i].1 / mem + coeffs[i].2;
    let legacy = legacy_exhaustive(&legacy_space, &qos, &legacy_cost).unwrap();

    let mut space = SearchSpace::cpu_and_memory();
    space.set_delta(0.1);
    let models: Vec<_> = coeffs
        .iter()
        .map(|&(a, b, c)| {
            FnCostModel::new(move |alloc: Allocation| a / alloc.cpu() + b / alloc.memory() + c)
        })
        .collect();
    let new = exhaustive_search_with(&space, &qos, &models, &SearchOptions::serial());
    assert_eq!(new.weighted_cost, legacy.weighted_cost);
    assert_eq!(new.limits_met, legacy.limits_met);
    assert!(new.limits_met[0], "the limit is satisfiable here");
    for (a, &(cpu, mem)) in new.allocations.iter().zip(&legacy.allocations) {
        assert_eq!(a.cpu(), cpu);
        assert_eq!(a.memory(), mem);
    }
}
