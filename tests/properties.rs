//! Property-based tests over the advisor's core invariants.

use proptest::prelude::*;
use vda::core::costmodel::{CostModel, FnCostModel, RegimeFnCostModel};
use vda::core::enumerate::{exhaustive_search, greedy_search};
use vda::core::problem::{Allocation, QoS, SearchSpace};
use vda::core::refine::RefinedModel;
use vda::stats::{LinearFit, MultiLinearFit, ReciprocalFit};

/// Strategy: per-workload reciprocal cost coefficients.
fn alphas(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..50.0, n)
}

/// Reciprocal synthetic cost models `α_i/r + β_i` per workload.
fn reciprocal_models(a: &[f64], betas: &[f64]) -> Vec<impl CostModel> {
    a.iter()
        .zip(betas)
        .map(|(&alpha, &beta)| FnCostModel::new(move |al: Allocation| alpha / al.cpu() + beta))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Greedy allocations are always feasible: shares within bounds and
    /// summing to at most 1 per varied resource.
    #[test]
    fn greedy_is_always_feasible(a in alphas(4), betas in alphas(4)) {
        let space = SearchSpace::cpu_only(0.5);
        let models = reciprocal_models(&a, &betas);
        let r = greedy_search(&space, &[QoS::default(); 4], &models);
        let total: f64 = r.allocations.iter().map(|al| al.cpu()).sum();
        prop_assert!(total <= 1.0 + 1e-9);
        for al in &r.allocations {
            prop_assert!(al.cpu() >= space.min_share - 1e-9);
            prop_assert!(al.cpu() <= 1.0 + 1e-9);
        }
    }

    /// Greedy never produces a worse total than the default allocation.
    #[test]
    fn greedy_never_worse_than_default(a in alphas(3), betas in alphas(3)) {
        let space = SearchSpace::cpu_only(0.5);
        let default_cost: f64 = (0..3)
            .map(|i| a[i] / space.default_allocation(3).cpu() + betas[i])
            .sum();
        let models = reciprocal_models(&a, &betas);
        let r = greedy_search(&space, &[QoS::default(); 3], &models);
        prop_assert!(r.weighted_cost <= default_cost + 1e-9);
    }

    /// Greedy lands within 5 % of the grid optimum on reciprocal
    /// models (the §4.5 claim).
    #[test]
    fn greedy_close_to_exhaustive(a in alphas(3)) {
        let space = SearchSpace::cpu_only(0.5);
        let models = reciprocal_models(&a, &[1.0; 3]);
        let greedy = greedy_search(&space, &[QoS::default(); 3], &models);
        let exact = exhaustive_search(&space, &[QoS::default(); 3], &models);
        prop_assert!(greedy.weighted_cost <= exact.weighted_cost * 1.05 + 1e-9);
    }

    /// The exhaustive DP respects both resource budgets jointly.
    #[test]
    fn exhaustive_budgets_hold(a in alphas(3), b in alphas(3)) {
        let space = SearchSpace::cpu_and_memory();
        let models: Vec<_> = a
            .iter()
            .zip(&b)
            .map(|(&ca, &cb)| {
                FnCostModel::new(move |al: Allocation| ca / al.cpu() + cb / al.memory())
            })
            .collect();
        let r = exhaustive_search(&space, &[QoS::default(); 3], &models);
        let cpu: f64 = r.allocations.iter().map(|al| al.cpu()).sum();
        let mem: f64 = r.allocations.iter().map(|al| al.memory()).sum();
        prop_assert!(cpu <= 1.0 + 1e-9);
        prop_assert!(mem <= 1.0 + 1e-9);
    }

    /// Degradation limits are never violated when satisfiable.
    #[test]
    fn degradation_limits_hold(alpha in 1.0f64..20.0, limit in 2.0f64..6.0) {
        let space = SearchSpace::cpu_only(0.5);
        let models = reciprocal_models(&[alpha, 4.0 * alpha], &[1.0; 2]);
        let qos = vec![QoS::with_limit(limit), QoS::default()];
        let r = greedy_search(&space, &qos, &models);
        if r.limits_met[0] {
            let full = alpha / 1.0 + 1.0;
            prop_assert!(r.costs[0] <= limit * full + 1e-6);
        }
    }

    /// Parallel and serial enumeration agree exactly, whatever the
    /// cost surface (the bit-identical contract of `SearchOptions`).
    #[test]
    fn parallel_enumeration_matches_serial(a in alphas(4), betas in alphas(4)) {
        use vda::core::enumerate::{exhaustive_search_with, greedy_search_with, SearchOptions};
        let space = SearchSpace::cpu_only(0.5);
        let models = reciprocal_models(&a, &betas);
        let serial = greedy_search_with(&space, &[QoS::default(); 4], &models, &SearchOptions::serial());
        let parallel = greedy_search_with(&space, &[QoS::default(); 4], &models, &SearchOptions::parallel());
        prop_assert_eq!(serial, parallel);
        let es = exhaustive_search_with(&space, &[QoS::default(); 4], &models, &SearchOptions::serial());
        let ep = exhaustive_search_with(&space, &[QoS::default(); 4], &models, &SearchOptions::parallel());
        prop_assert_eq!(es, ep);
    }

    /// Simple regression recovers planted lines exactly.
    #[test]
    fn linear_fit_recovers_planted_line(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
    ) {
        let xs: Vec<f64> = (1..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let fit = LinearFit::fit(&xs, &ys).expect("distinct xs");
        prop_assert!((fit.slope - slope).abs() < 1e-6);
        prop_assert!((fit.intercept - intercept).abs() < 1e-6);
    }

    /// Reciprocal fits recover planted cost models over any share set.
    #[test]
    fn reciprocal_fit_recovers_model(alpha in 0.1f64..100.0, beta in 0.0f64..100.0) {
        let shares = [0.1, 0.25, 0.4, 0.7, 1.0];
        let costs: Vec<f64> = shares.iter().map(|r| alpha / r + beta).collect();
        let fit = ReciprocalFit::fit(&shares, &costs).expect("valid shares");
        prop_assert!((fit.alpha - alpha).abs() / alpha < 1e-6);
        prop_assert!((fit.beta - beta).abs() < 1e-4);
    }

    /// Multi-dimensional regression recovers planted planes.
    #[test]
    fn multi_fit_recovers_plane(
        b0 in -10.0f64..10.0,
        b1 in -10.0f64..10.0,
        b2 in -10.0f64..10.0,
    ) {
        let rows: Vec<Vec<f64>> = vec![
            vec![1.0, 1.0], vec![2.0, 1.0], vec![1.0, 2.0],
            vec![3.0, 5.0], vec![0.5, 0.25], vec![4.0, 2.0],
        ];
        let ys: Vec<f64> = rows.iter().map(|r| b0 + b1 * r[0] + b2 * r[1]).collect();
        let fit = MultiLinearFit::fit(&rows, &ys).expect("well-posed");
        prop_assert!((fit.intercept - b0).abs() < 1e-6);
        prop_assert!((fit.coefficients[0] - b1).abs() < 1e-6);
        prop_assert!((fit.coefficients[1] - b2).abs() < 1e-6);
    }

    /// A refined model scaled by one observation passes through it.
    #[test]
    fn refinement_scaling_passes_through_observation(
        alpha in 1.0f64..50.0,
        factor in 0.2f64..5.0,
    ) {
        let space = SearchSpace::cpu_only(0.5);
        let est = RegimeFnCostModel::new(move |a: Allocation| (alpha / a.cpu() + 1.0, 1));
        let mut model = RefinedModel::fit_initial(&space, 8, &est);
        let at = Allocation::new(0.5, 0.5);
        let actual = factor * (alpha / 0.5 + 1.0);
        model.observe(at, actual);
        let predicted = model.predict(at);
        prop_assert!(
            (predicted - actual).abs() / actual < 1e-6,
            "model must pass through the observation: {} vs {}",
            predicted,
            actual
        );
    }

    /// Piece lookup is total: any share in (0, 1] maps to some piece.
    #[test]
    fn piece_lookup_total(share in 0.01f64..1.0) {
        let space = SearchSpace::memory_only(0.5);
        let est = RegimeFnCostModel::new(|a: Allocation| {
            if a.memory() < 0.35 { (50.0 / a.memory(), 1) } else { (5.0 / a.memory() + 20.0, 2) }
        });
        let model = RefinedModel::fit_initial(&space, 10, &est);
        let idx = model.piece_for(share);
        prop_assert!(idx < model.pieces.len());
        prop_assert!(model.predict(Allocation::new(0.5, share)).is_finite());
    }

    /// The serialization contract over the *entire* f64 bit space:
    /// any finite bit pattern — normal, subnormal, signed zero —
    /// written by jsonio parses back to the identical bits, and the
    /// non-finite patterns all collapse to the null sentinel. Two u32
    /// draws make up the u64 (the full-width `0..=u64::MAX` range
    /// strategy would overflow its span arithmetic).
    #[test]
    fn jsonio_round_trips_arbitrary_f64_bit_patterns(
        hi in 0u32..=u32::MAX,
        lo in 0u32..=u32::MAX,
    ) {
        use vda::core::jsonio::{self, Json};
        let bits = ((hi as u64) << 32) | lo as u64;
        let x = f64::from_bits(bits);
        let written = jsonio::write(&Json::Num(x));
        prop_assert_eq!(&written, &jsonio::fmt_f64(x));
        if x.is_finite() {
            let back = jsonio::parse(&written).unwrap();
            let y = back.as_f64().unwrap();
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "bits 0x{:016x} did not round-trip ({} -> {})", bits, x, y
            );
        } else {
            prop_assert_eq!(written.as_str(), "null");
        }
    }
}
