//! Integration tests for online refinement (§5) and dynamic
//! configuration management (§6) across the full stack.

use vda::core::dynamic::{DynamicConfigManager, DynamicOptions, ManagementMode, PeriodDecision};
use vda::core::problem::{QoS, SearchSpace};
use vda::core::refine::RefineOptions;
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::{tpcc, tpch};

fn mixed_advisor() -> VirtualizationDesignAdvisor {
    let hv = Hypervisor::new(PhysicalMachine::paper_testbed());
    let mut adv = VirtualizationDesignAdvisor::new(hv);
    adv.add_tenant(
        Tenant::new(
            "oltp",
            Engine::db2(),
            tpcc::catalog(10),
            tpcc::workload(6, 8, 40.0),
        )
        .expect("binds"),
        QoS::default(),
    );
    adv.add_tenant(
        Tenant::new(
            "dss",
            Engine::db2(),
            tpch::catalog(1.0),
            tpch::query_workload(18, 2.0),
        )
        .expect("binds"),
        QoS::default(),
    );
    adv.calibrate();
    adv
}

#[test]
fn oltp_workloads_are_underestimated() {
    // The §7.8 premise: optimizers do not model contention, so OLTP
    // actuals exceed estimates, increasingly at low CPU shares.
    let adv = mixed_advisor();
    let lo = vda::core::problem::Allocation::new(0.1, 0.25);
    let hi = vda::core::problem::Allocation::new(1.0, 0.25);
    let ratio_lo = adv.actual_cost(0, lo) / adv.estimator(0).cost(lo);
    let ratio_hi = adv.actual_cost(0, hi) / adv.estimator(0).cost(hi);
    assert!(ratio_hi > 1.1, "OLTP must be underestimated: {ratio_hi}");
    assert!(
        ratio_lo > ratio_hi,
        "underestimation must grow as CPU shrinks: {ratio_lo} vs {ratio_hi}"
    );
}

#[test]
fn refinement_never_ends_worse_than_start() {
    let adv = mixed_advisor();
    let space = SearchSpace::cpu_only(0.25);
    let rec = adv.recommend(&space);
    let before = adv.total_actual(&rec.result.allocations);
    let (outcome, _) =
        adv.refine_recommendation(&space, &rec.result.allocations, &RefineOptions::default());
    let after = adv.total_actual(&outcome.final_allocations);
    assert!(
        after <= before * 1.001,
        "refinement regressed: {before} -> {after}"
    );
}

#[test]
fn refinement_approaches_actual_optimum() {
    let adv = mixed_advisor();
    let space = SearchSpace::cpu_only(0.25);
    let rec = adv.recommend(&space);
    let (outcome, _) =
        adv.refine_recommendation(&space, &rec.result.allocations, &RefineOptions::default());
    let refined = adv.total_actual(&outcome.final_allocations);
    let optimal = adv.total_actual(&adv.optimal_actual(&space).allocations);
    assert!(
        refined <= optimal * 1.1,
        "refined {refined} vs optimal {optimal}"
    );
}

#[test]
fn refined_models_absorb_observations() {
    let adv = mixed_advisor();
    let space = SearchSpace::cpu_only(0.25);
    let rec = adv.recommend(&space);
    let (outcome, models) =
        adv.refine_recommendation(&space, &rec.result.allocations, &RefineOptions::default());
    assert!(outcome.iterations >= 1);
    for m in &models {
        let total: usize = m.pieces.iter().map(|p| p.observations.len()).sum();
        assert!(total >= 1, "every model should hold observations");
    }
    // History records (estimate, actual) pairs per iteration.
    for h in &outcome.history {
        assert_eq!(h.len(), outcome.iterations);
    }
}

#[test]
fn workload_swap_triggers_rebuild_and_reallocation() {
    let mut adv = mixed_advisor();
    let space = SearchSpace::cpu_only(0.25);
    let mut mgr = DynamicConfigManager::new(&adv, space, DynamicOptions::default());
    let before = mgr.process_period(&adv).allocations;

    adv.swap_tenants(0, 1);
    let report = mgr.process_period(&adv);
    assert!(
        report.decisions.contains(&PeriodDecision::RebuildOnChange),
        "swap not detected: {:?}",
        report.decisions
    );
    // The allocation must follow the workloads to their new VMs.
    let settle = mgr.process_period(&adv).allocations;
    let moved = (settle[0].cpu() - before[0].cpu()).abs() > 0.04
        || (settle[1].cpu() - before[1].cpu()).abs() > 0.04;
    assert!(moved, "allocations did not react: {before:?} -> {settle:?}");
}

#[test]
fn continuous_mode_never_reports_major_changes() {
    let mut adv = mixed_advisor();
    let opts = DynamicOptions {
        mode: ManagementMode::ContinuousRefinement,
        ..DynamicOptions::default()
    };
    let mut mgr = DynamicConfigManager::new(&adv, SearchSpace::cpu_only(0.25), opts);
    mgr.process_period(&adv);
    adv.swap_tenants(0, 1);
    let report = mgr.process_period(&adv);
    assert!(report
        .decisions
        .iter()
        .all(|d| *d == PeriodDecision::ContinueRefinement));
}

#[test]
fn intensity_growth_is_classified_minor() {
    let mut adv = mixed_advisor();
    let mut mgr =
        DynamicConfigManager::new(&adv, SearchSpace::cpu_only(0.25), DynamicOptions::default());
    mgr.process_period(&adv);
    adv.tenant_mut(1).scale_workload(3.0);
    let report = mgr.process_period(&adv);
    assert_eq!(
        report.decisions[1],
        PeriodDecision::ContinueRefinement,
        "intensity change misclassified: metric {:?}",
        report.change_metrics
    );
    assert!(report.change_metrics[1] < 0.05);
}
