//! Property tests for durable control-plane snapshots: across random
//! drift sequences and arbitrary mid-sequence restarts, save → restore
//! → resume must be bit-identical to the uninterrupted run — same
//! decision log, same placements, same objective bits — and the
//! snapshot JSON itself must round-trip byte-for-byte.

use proptest::prelude::*;
use vda::core::problem::{QoS, SearchSpace};
use vda::core::tenant::Tenant;
use vda::core::VirtualizationDesignAdvisor;
use vda::core::{ControlPlane, ControlPlaneOptions, FleetEvent, FleetSnapshot};
use vda::simdb::engines::Engine;
use vda::vmm::{Hypervisor, PhysicalMachine};
use vda::workloads::tpch;

/// Queries cycled through by drift events (scan-leaning: cheap to
/// probe, so the tests stay affordable in debug builds).
const CYCLE: [usize; 3] = [6, 16, 7];

/// A miniature two-class fleet: machine 0 a stock paper testbed,
/// machine 1 a faster clock, two tenants each.
fn fleet() -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let mut machines = Vec::new();
    for m in 0..2usize {
        let mut spec = PhysicalMachine::paper_testbed();
        if m == 1 {
            spec.core_ghz *= 1.5;
        }
        let mut adv = VirtualizationDesignAdvisor::new(Hypervisor::new(spec));
        for s in 0..2usize {
            let q = CYCLE[(m * 2 + s) % CYCLE.len()];
            let name = format!("m{m}-t{s}-q{q}");
            adv.add_tenant(
                Tenant::new(
                    name.clone(),
                    Engine::db2(),
                    tpch::catalog(1.0),
                    tpch::query_workload(q, 1.0 + (m * 2 + s) as f64 * 0.5).named(name),
                )
                .expect("bench workloads bind"),
                if s == 0 {
                    QoS::with_limit(6.0)
                } else {
                    QoS::default()
                },
            );
        }
        machines.push(adv);
    }
    let space = SearchSpace::cpu_only(512.0 / 8192.0);
    (machines, vec![space; 2])
}

fn options() -> ControlPlaneOptions {
    ControlPlaneOptions {
        migration_threshold: 1e-3,
        recalibration_surcharge: 1e-2,
        ..ControlPlaneOptions::default()
    }
}

/// Decode one drift event against the plane's *live* state, so every
/// generated event is valid whatever the earlier events did to slot
/// counts. `(kind, msel, ssel, factor)` come from the proptest
/// strategy.
fn decode_event(
    plane: &ControlPlane,
    e: usize,
    kind: u32,
    msel: usize,
    ssel: usize,
    factor: f64,
) -> FleetEvent {
    let count = plane.machine_count();
    // Walk to a machine that still hosts tenants (departures may have
    // emptied one).
    let mut m = msel % count;
    while plane.machine(m).tenant_count() == 0 {
        m = (m + 1) % count;
    }
    let tcount = plane.machine(m).tenant_count();
    let slot = ssel % tcount;
    let q = CYCLE[e % CYCLE.len()];
    match kind % 4 {
        0 => FleetEvent::WorkloadScaled {
            machine: m,
            slot,
            factor,
        },
        1 => FleetEvent::WorkloadChanged {
            machine: m,
            slot,
            workload: tpch::query_workload(q, 1.0 + factor).named(format!("drift-{e}-q{q}")),
        },
        2 if tcount > 1 => FleetEvent::TenantDeparted {
            machine: m,
            slot: tcount - 1,
        },
        _ => FleetEvent::TenantArrived {
            machine: msel % count,
            tenant: Box::new(
                Tenant::new(
                    format!("arrival-{e}-q{q}"),
                    Engine::db2(),
                    tpch::catalog(1.0),
                    tpch::query_workload(q, 1.0 + 0.125 * e as f64)
                        .named(format!("arrival-{e}-q{q}")),
                )
                .expect("bench workloads bind"),
            ),
            qos: QoS::default(),
        },
    }
}

/// Reconstruct the plane's current topology as fresh, uncalibrated
/// advisors — what a restarted process rebuilds before feeding the
/// snapshot to `ControlPlane::restore`.
fn rebuild(plane: &ControlPlane) -> (Vec<VirtualizationDesignAdvisor>, Vec<SearchSpace>) {
    let mut machines = Vec::new();
    let mut spaces = Vec::new();
    for m in 0..plane.machine_count() {
        let live = plane.machine(m);
        let mut adv =
            VirtualizationDesignAdvisor::new(Hypervisor::new(*live.hypervisor().machine()));
        for (i, &q) in live.qos().iter().enumerate() {
            adv.add_tenant(live.tenant(i).clone(), q);
        }
        machines.push(adv);
        spaces.push(*plane.space(m));
    }
    (machines, spaces)
}

/// Drive `plane` through the drift sequence, recording the concrete
/// events so a second leg can replay them verbatim.
fn drive(
    plane: &mut ControlPlane,
    drifts: &[(u32, usize, usize, f64)],
    from: usize,
    recorded: &mut Vec<FleetEvent>,
) {
    for (e, &(kind, msel, ssel, factor)) in drifts.iter().enumerate().skip(from) {
        let event = decode_event(plane, e, kind, msel, ssel, factor);
        recorded.push(event.clone());
        plane.process_event(event);
    }
}

/// The core contract check: run the sequence uninterrupted; run it
/// again with a snapshot/restore at `restart`; the two runs must agree
/// bit-for-bit, and the snapshot JSON must round-trip exactly.
fn check_restart_at(drifts: &[(u32, usize, usize, f64)], restart: usize) {
    // Uninterrupted leg (also the event recorder: the bit-identical
    // contract means the interrupted leg sees the same live state at
    // every step, so replaying the recorded events is faithful).
    let (machines, spaces) = fleet();
    let mut reference = ControlPlane::new(machines, spaces, options());
    let mut recorded = Vec::new();
    drive(&mut reference, drifts, 0, &mut recorded);

    // Interrupted leg: replay to the restart point, snapshot, restore
    // into a freshly built (uncalibrated) fleet, replay the rest.
    let (machines, spaces) = fleet();
    let mut first = ControlPlane::new(machines, spaces, options());
    for event in &recorded[..restart] {
        first.process_event(event.clone());
    }
    let snapshot = first.snapshot();
    let json = snapshot.to_json();
    let parsed = FleetSnapshot::from_json(&json).expect("snapshot parses");
    assert_eq!(parsed, snapshot, "parse must invert to_json");

    let (fresh, spaces) = rebuild(&first);
    let mut resumed =
        ControlPlane::restore(fresh, spaces, options(), &parsed).expect("snapshot restores");
    assert_eq!(
        resumed.snapshot().to_json(),
        json,
        "restored plane must re-serialize byte-identically"
    );
    for event in &recorded[restart..] {
        resumed.process_event(event.clone());
    }

    assert_eq!(
        resumed.decision_log(),
        reference.decision_log(),
        "restart at {restart}: decision logs diverge"
    );
    assert_eq!(
        resumed.placements(),
        reference.placements(),
        "restart at {restart}: placements diverge"
    );
    assert_eq!(
        resumed.objective().to_bits(),
        reference.objective().to_bits(),
        "restart at {restart}: objective bits diverge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random drift sequences, random restart point: resume must be
    /// bit-identical to never having stopped.
    #[test]
    fn resume_is_bit_identical_across_random_drift_sequences(
        drifts in proptest::collection::vec(
            (0u32..4, 0usize..8, 0usize..8, 0.4f64..2.5),
            2..6,
        ),
        cut in 0usize..64,
    ) {
        let restart = cut % (drifts.len() + 1);
        check_restart_at(&drifts, restart);
    }
}

/// Every restart point of one fixed sequence — including restart 0 (a
/// snapshot of the freshly built, never-evented plane) and a restart
/// after the final event (nothing left to replay).
#[test]
fn every_restart_point_of_a_fixed_sequence_resumes_bit_identically() {
    // One of each kind: a scale, a major change, a departure, an
    // arrival.
    let drifts = [
        (0u32, 0usize, 1usize, 1.6f64),
        (1, 1, 0, 2.0),
        (2, 0, 1, 1.0),
        (3, 1, 0, 1.2),
    ];
    for restart in 0..=drifts.len() {
        check_restart_at(&drifts, restart);
    }
}

/// Ring-buffer snapshots at a non-trivial head position: with a
/// three-decision horizon, five events wrap the ring before the
/// snapshot, so the log's logical order differs from its physical
/// buffer order (the head sits mid-buffer). The snapshot serializes
/// the *logical* order and the drop counter — head position is not
/// durable state — so restore must rebuild an equivalent ring, the
/// immediate re-snapshot must be byte-identical, and the resumed run
/// must keep overwriting oldest-first exactly like the uninterrupted
/// one.
#[test]
fn ring_buffer_snapshot_restores_at_a_wrapped_head_position() {
    let ring_options = || ControlPlaneOptions {
        decision_log_capacity: 3,
        ..options()
    };
    // Scales and changes only: slot counts stay fixed, so the recorded
    // stream is trivially valid for every leg.
    let drifts = [
        (0u32, 0usize, 1usize, 1.6f64),
        (1, 1, 0, 2.0),
        (0, 0, 0, 0.7),
        (1, 0, 1, 1.3),
        (0, 1, 1, 1.9),
        (0, 0, 1, 1.1),
        (1, 1, 1, 1.7),
    ];

    let (machines, spaces) = fleet();
    let mut reference = ControlPlane::new(machines, spaces, ring_options());
    let mut recorded = Vec::new();
    drive(&mut reference, &drifts, 0, &mut recorded);
    assert_eq!(reference.decision_log().len(), 3);
    assert_eq!(reference.decision_log().dropped(), 4);

    // Interrupted leg, cut after five events: two decisions already
    // overwritten, head wrapped to the middle of the buffer.
    let (machines, spaces) = fleet();
    let mut first = ControlPlane::new(machines, spaces, ring_options());
    for event in &recorded[..5] {
        first.process_event(event.clone());
    }
    assert_eq!(first.decision_log().len(), 3);
    assert_eq!(first.decision_log().dropped(), 2);

    let snapshot = first.snapshot();
    let json = snapshot.to_json();
    let parsed = FleetSnapshot::from_json(&json).expect("snapshot parses");
    assert_eq!(parsed, snapshot, "parse must invert to_json");

    let (fresh, spaces) = rebuild(&first);
    let mut resumed =
        ControlPlane::restore(fresh, spaces, ring_options(), &parsed).expect("snapshot restores");
    assert_eq!(
        resumed.snapshot().to_json(),
        json,
        "re-snapshot at a wrapped head must be byte-identical"
    );
    for event in &recorded[5..] {
        resumed.process_event(event.clone());
    }

    assert_eq!(
        resumed.decision_log(),
        reference.decision_log(),
        "ring contents after resume diverge"
    );
    assert_eq!(resumed.decision_log().dropped(), 4);
    assert_eq!(resumed.placements(), reference.placements());
    assert_eq!(
        resumed.objective().to_bits(),
        reference.objective().to_bits()
    );
}

/// A restored plane rejects topologies that do not match the snapshot:
/// wrong machine count, wrong hardware, wrong tenants.
#[test]
fn restore_validates_the_rebuilt_topology() {
    let (machines, spaces) = fleet();
    let plane = ControlPlane::new(machines, spaces, options());
    let snapshot = plane.snapshot();

    let (mut machines, mut spaces) = fleet();
    machines.pop();
    spaces.pop();
    let err = ControlPlane::restore(machines, spaces, options(), &snapshot).unwrap_err();
    assert!(err.contains("machines"), "{err}");

    let (mut machines, spaces) = fleet();
    machines.swap(0, 1); // swaps both hardware and tenant sets
    let err = ControlPlane::restore(machines, spaces, options(), &snapshot).unwrap_err();
    assert!(err.contains("machine 0"), "{err}");

    let (mut machines, spaces) = fleet();
    machines[0].remove_tenant(1);
    let err = ControlPlane::restore(machines, spaces, options(), &snapshot).unwrap_err();
    assert!(err.contains("tenant"), "{err}");
}
