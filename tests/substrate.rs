//! Integration tests for the simulated substrate as a whole: SQL →
//! bind → optimize → execute, across both engines and all workload
//! generators.

use vda::simdb::bind_statement;
use vda::simdb::engines::Engine;
use vda::simdb::exec::{ExecContext, Executor};
use vda::simdb::optimizer::Optimizer;
use vda::vmm::{Hypervisor, PhysicalMachine, VmConfig};
use vda::workloads::{tpcc, tpch};

fn perf(cpu: f64, mem: f64) -> vda::vmm::VmPerf {
    Hypervisor::new(PhysicalMachine::paper_testbed())
        .perf_for(VmConfig::new(cpu, mem).expect("valid"))
}

#[test]
fn every_tpch_query_plans_and_executes_on_both_engines() {
    for sf in [1.0, 10.0] {
        let cat = tpch::catalog(sf);
        for engine in [Engine::pg(), Engine::db2()] {
            let exec = Executor::new(&engine, &cat);
            for n in 1..=22 {
                let q = bind_statement(&tpch::query(n), &cat)
                    .unwrap_or_else(|e| panic!("Q{n}@sf{sf}: {e}"));
                let out = exec.execute(&q, &perf(0.5, 0.5), &ExecContext::default());
                assert!(
                    out.seconds.is_finite() && out.seconds > 0.0,
                    "Q{n}@sf{sf} on {:?}: {out:?}",
                    engine.kind()
                );
            }
        }
    }
}

#[test]
fn every_tpcc_statement_plans_and_executes() {
    let cat = tpcc::catalog(10);
    let engine = Engine::db2();
    let exec = Executor::new(&engine, &cat);
    let w = tpcc::workload(4, 6, 10.0);
    for s in &w.statements {
        let q = bind_statement(&s.sql, &cat).unwrap_or_else(|e| panic!("{}: {e}", s.sql));
        let out = exec.execute(
            &q,
            &perf(0.5, 0.25),
            &ExecContext {
                concurrency: s.concurrency,
            },
        );
        assert!(
            out.seconds > 0.0 && out.seconds < 3600.0,
            "{}: {out:?}",
            s.sql
        );
    }
}

#[test]
fn actual_runtime_monotone_in_cpu_share() {
    let cat = tpch::catalog(1.0);
    let engine = Engine::db2();
    let exec = Executor::new(&engine, &cat);
    for n in [1usize, 6, 18, 21] {
        let q = bind_statement(&tpch::query(n), &cat).expect("binds");
        let mut prev = f64::INFINITY;
        for share in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let t = exec
                .execute(&q, &perf(share, 0.5), &ExecContext::default())
                .seconds;
            assert!(t <= prev + 1e-9, "Q{n}: runtime rose with CPU at {share}");
            prev = t;
        }
    }
}

#[test]
fn actual_runtime_monotone_in_memory_share() {
    let cat = tpch::catalog(10.0);
    let engine = Engine::db2();
    let exec = Executor::new(&engine, &cat);
    for n in [1usize, 7, 16, 18] {
        let q = bind_statement(&tpch::query(n), &cat).expect("binds");
        let mut prev = f64::INFINITY;
        for share in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let t = exec
                .execute(&q, &perf(0.5, share), &ExecContext::default())
                .seconds;
            assert!(
                t <= prev * 1.001,
                "Q{n}: runtime rose with memory at {share}: {t} vs {prev}"
            );
            prev = t;
        }
    }
}

#[test]
fn estimated_cost_monotone_in_each_resource() {
    // The what-if premise: more resources never increase estimated
    // cost. Checked at the optimizer level across the whole TPC-H set.
    let cat = tpch::catalog(1.0);
    let engine = Engine::db2();
    for n in 1..=22 {
        let q = bind_statement(&tpch::query(n), &cat).expect("binds");
        let mut prev = f64::INFINITY;
        for share in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let params = engine.true_params(&perf(share, 0.5));
            let plan = Optimizer::new(&cat, engine.factors(&params)).plan(&q);
            assert!(
                plan.native_cost.is_finite() && plan.native_cost > 0.0,
                "Q{n} bad cost"
            );
            // Native units are CPU-share independent for I/O, so
            // convert through time: native × unit-seconds.
            let secs =
                plan.native_cost * engine.native_unit_seconds(perf(share, 0.5).seq_page_secs);
            assert!(secs <= prev * 1.001, "Q{n}: estimate rose with CPU");
            prev = secs;
        }
    }
}

#[test]
fn plan_signatures_stable_within_regime() {
    let cat = tpch::catalog(1.0);
    let engine = Engine::db2();
    let q = bind_statement(&tpch::query(3), &cat).expect("binds");
    let plan_at = |mem: f64| {
        let params = engine.true_params(&perf(0.5, mem));
        Optimizer::new(&cat, engine.factors(&params))
            .plan(&q)
            .signature
    };
    // Tiny memory nudges inside one regime keep the signature.
    assert_eq!(plan_at(0.50), plan_at(0.51));
}

#[test]
fn io_contention_vm_slows_io_bound_queries() {
    let cat = tpch::catalog(1.0);
    let engine = Engine::pg();
    // Q17 is the I/O-bound probe storm: disk service time dominates.
    let q = bind_statement(&tpch::query(17), &cat).expect("binds");
    let quiet = Hypervisor::with_io_contention(PhysicalMachine::paper_testbed(), 1.0);
    let noisy = Hypervisor::with_io_contention(PhysicalMachine::paper_testbed(), 2.0);
    let cfg = VmConfig::new(0.5, 0.1).expect("valid");
    let exec = Executor::new(&engine, &cat);
    let t_quiet = exec
        .execute(&q, &quiet.perf_for(cfg), &ExecContext::default())
        .seconds;
    let t_noisy = exec
        .execute(&q, &noisy.perf_for(cfg), &ExecContext::default())
        .seconds;
    assert!(
        t_noisy > t_quiet * 1.3,
        "contention had no effect: {t_quiet} vs {t_noisy}"
    );
}
