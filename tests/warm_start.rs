//! Property tests for warm-started incremental re-optimization:
//! across arbitrary drift sequences, every period's warm-started
//! coarse-to-fine solve must match a cold coarse-to-fine solve *and*
//! the full-grid DP — objective, allocations, and `limits_met`, within
//! 1e-9 — including drifts that throw the optimum across coarse-cell
//! boundaries and periods whose degradation limits are jointly
//! infeasible.

use proptest::prelude::*;
use vda::core::costmodel::{CostModel, FnCostModel};
use vda::core::enumerate::{
    coarse_to_fine_search_warm, try_coarse_to_fine_search_with, try_exhaustive_search_with,
    CoarseToFineOptions, SearchOptions, WarmStart,
};
use vda::core::problem::{Allocation, QoS, SearchSpace};

/// Calibration-identity stand-in: constant because the drift tests
/// never recalibrate (workload drift is carried by the fingerprints).
const SALT: u64 = 0x5eed;

/// Per-workload convex coefficients (α for CPU, β for memory, γ flat).
fn coeffs(n: usize) -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    proptest::collection::vec((0.1f64..30.0, 0.1f64..30.0, 0.1f64..5.0), n)
}

/// Random QoS regimes: mixed gains, limits absent / loose / tight.
fn qos_regimes(n: usize) -> impl Strategy<Value = Vec<QoS>> {
    proptest::collection::vec(
        (
            1.0f64..5.0,
            prop_oneof![Just(f64::INFINITY), boxed(1.3f64..4.0)],
        ),
        n,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .map(|(gain, limit)| QoS {
                gain,
                degradation_limit: limit,
            })
            .collect()
    })
}

fn boxed<S: Strategy + 'static>(s: S) -> proptest::BoxedStrategy<S::Value> {
    proptest::boxed(s)
}

/// Workload `i`'s model at drift scale `s`: the CPU term scales, so a
/// drift moves both the optimum *and* the degradation boundary (a
/// pure whole-cost scaling would leave the degradation ratio — and
/// with it every limit verdict — untouched).
fn models(coeffs: &[(f64, f64, f64)], scales: &[f64]) -> Vec<impl CostModel> {
    coeffs
        .iter()
        .zip(scales)
        .map(|(&(alpha, beta, gamma), &s)| {
            FnCostModel::new(move |a: Allocation| s * alpha / a.cpu() + beta / a.memory() + gamma)
        })
        .collect()
}

/// One period: warm solve against the drift state, cold solve, full
/// grid — all three must agree on objective, allocations, and limit
/// verdicts within 1e-9.
fn check_period<M: CostModel>(
    space: &SearchSpace,
    qos: &[QoS],
    models: &[M],
    opts: &CoarseToFineOptions,
    fingerprints: &[u64],
    warm: &mut WarmStart,
    period: usize,
) {
    let serial = SearchOptions::serial();
    let warm_r =
        coarse_to_fine_search_warm(space, qos, models, opts, &serial, SALT, fingerprints, warm)
            .expect("grid hosts the workloads");
    let cold_r = try_coarse_to_fine_search_with(space, qos, models, opts, &serial)
        .expect("c2f is None only when exhaustive is");
    let full_r =
        try_exhaustive_search_with(space, qos, models, &serial).expect("grid hosts the workloads");
    for (name, other) in [("cold c2f", &cold_r), ("full grid", &full_r)] {
        prop_assert!(
            (warm_r.weighted_cost - other.weighted_cost).abs() <= 1e-9,
            "period {period}: warm {} vs {name} {}",
            warm_r.weighted_cost,
            other.weighted_cost
        );
        prop_assert_eq!(
            &warm_r.limits_met,
            &other.limits_met,
            "period {}: warm limit verdicts diverge from {}",
            period,
            name
        );
        for (i, (w, o)) in warm_r
            .allocations
            .iter()
            .zip(&other.allocations)
            .enumerate()
        {
            prop_assert!(
                (w.cpu() - o.cpu()).abs() <= 1e-9 && (w.memory() - o.memory()).abs() <= 1e-9,
                "period {period}, workload {i}: warm {w:?} vs {name} {o:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CPU-only drift sequences: each period rescales one workload by
    /// a moderate factor; warm solves must track cold and full-grid
    /// answers period over period (the first period is the cold prime,
    /// later ones are hits or delta-solves).
    #[test]
    fn warm_tracks_random_drift_sequences(
        cs in coeffs(5),
        qos in qos_regimes(5),
        n in 2usize..=5,
        drifts in proptest::collection::vec((0usize..8, 0.3f64..3.0), 1..5),
    ) {
        let space = SearchSpace::cpu_only(0.5); // δ = 0.05
        let cs = &cs[..n];
        let qos = &qos[..n];
        let opts = CoarseToFineOptions::auto(&space, n);
        let mut warm = WarmStart::new();
        let mut scales = vec![1.0f64; n];
        for (period, &(idx, factor)) in std::iter::once(&(0, 1.0)).chain(&drifts).enumerate() {
            scales[idx % n] *= factor;
            let models = models(cs, &scales);
            let fingerprints: Vec<u64> = scales.iter().map(|s| s.to_bits()).collect();
            check_period(&space, qos, &models, &opts, &fingerprints, &mut warm, period);
        }
        prop_assert!(warm.is_warm());
        prop_assert_eq!(warm.cold_solves(), 1, "only the first period cold-solves");
    }

    /// Violent drifts (×10–×100 up or down) throw the optimum across
    /// coarse-cell boundaries; the delta-solve's re-seeding from the
    /// fresh coarse optimum (plus window escalation) must still land
    /// on the cold answer.
    #[test]
    fn warm_survives_coarse_cell_boundary_crossings(
        cs in coeffs(4),
        qos in qos_regimes(4),
        n in 2usize..=4,
        drifts in proptest::collection::vec(
            (0usize..8, prop_oneof![0.01f64..0.1, 10.0f64..100.0]),
            1..4,
        ),
    ) {
        let space = SearchSpace::cpu_only(0.5);
        let cs = &cs[..n];
        let qos = &qos[..n];
        let opts = CoarseToFineOptions::auto(&space, n);
        let mut warm = WarmStart::new();
        let mut scales = vec![1.0f64; n];
        for (period, &(idx, factor)) in std::iter::once(&(0, 1.0)).chain(&drifts).enumerate() {
            scales[idx % n] *= factor;
            let models = models(cs, &scales);
            let fingerprints: Vec<u64> = scales.iter().map(|s| s.to_bits()).collect();
            check_period(&space, qos, &models, &opts, &fingerprints, &mut warm, period);
        }
    }

    /// Joint CPU+memory grids: drift sequences over the 2-D lattice
    /// (delta-solves rebuild 2-D option tables) agree with cold and
    /// full-grid answers too.
    #[test]
    fn warm_tracks_drift_on_joint_grids(
        cs in coeffs(3),
        qos in qos_regimes(3),
        n in 2usize..=3,
        drifts in proptest::collection::vec((0usize..8, 0.2f64..5.0), 1..4),
    ) {
        let space = SearchSpace::cpu_and_memory(); // δ = 0.05
        let cs = &cs[..n];
        let qos = &qos[..n];
        let opts = CoarseToFineOptions::auto(&space, n);
        let mut warm = WarmStart::new();
        let mut scales = vec![1.0f64; n];
        for (period, &(idx, factor)) in std::iter::once(&(0, 1.0)).chain(&drifts).enumerate() {
            scales[idx % n] *= factor;
            let models = models(cs, &scales);
            let fingerprints: Vec<u64> = scales.iter().map(|s| s.to_bits()).collect();
            check_period(&space, qos, &models, &opts, &fingerprints, &mut warm, period);
        }
    }
}

/// A drift sequence that passes through a jointly-infeasible period:
/// the warm path must flag the infeasibility exactly like the cold and
/// full-grid searches (best-effort allocation, `limits_met` flags
/// false) and recover to the feasible optimum — not a stale cached
/// answer — once the drift reverts.
#[test]
fn jointly_infeasible_periods_are_flagged_and_recovered_from() {
    let space = SearchSpace::cpu_only(0.5);
    let qos = vec![QoS::with_limit(1.05), QoS::with_limit(1.05)];
    let cs = vec![(10.0, 0.0, 1.0), (10.0, 0.0, 1.0)];
    let opts = CoarseToFineOptions::auto(&space, 2);
    let mut warm = WarmStart::new();
    // s = 0.002: each workload stays within 1.05× of solo cost from
    // ~0.28 CPU share up — two fit. s = 1.0: workload 0 needs ~0.95 —
    // jointly infeasible with workload 1's ~0.28.
    for (period, scales) in [
        [0.002, 0.002],
        [1.0, 0.002], // infeasible period
        [0.002, 0.002],
    ]
    .iter()
    .enumerate()
    {
        let models = models(&cs, scales);
        let fingerprints: Vec<u64> = scales.iter().map(|s| s.to_bits()).collect();
        check_period(
            &space,
            &qos,
            &models,
            &opts,
            &fingerprints,
            &mut warm,
            period,
        );
        let serial = SearchOptions::serial();
        let full = try_exhaustive_search_with(&space, &qos, &models, &serial).unwrap();
        if period == 1 {
            assert!(
                full.limits_met.iter().any(|m| !m),
                "the middle period must be jointly infeasible: {:?}",
                full.limits_met
            );
        } else {
            assert!(
                full.limits_met.iter().all(|&m| m),
                "feasible periods must meet every limit: {:?}",
                full.limits_met
            );
        }
    }
    assert_eq!(warm.cold_solves(), 1);
    assert_eq!(warm.delta_solves(), 2);
}
