//! Offline stub of `criterion`.
//!
//! Implements the benchmark-authoring macros and the
//! `Criterion::bench_function` entry point with a simple wall-clock
//! loop: warm up once, run `sample_size` timed samples, and report
//! the per-iteration mean and min. No statistical analysis, plots, or
//! baselines — enough for `cargo bench` to build and produce numbers.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Run one benchmark and print its timings.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let (mean, min) = b.stats();
        println!("{name:<44} mean {:>12?}  min {:>12?}", mean, min);
        self
    }
}

/// Passed to each benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    fn stats(&self) -> (Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        (mean, min)
    }
}

/// Group benchmark functions under a callable name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
