//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `lock()`/`read()`/`write()` return guards directly, recovering
//! the inner data if a previous holder panicked.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
