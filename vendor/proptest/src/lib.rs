//! Offline stub of `proptest`.
//!
//! Keeps the `proptest!` test-authoring surface (strategies, ranges,
//! tuples, `prop_map`, `prop_oneof!`, `collection::vec`,
//! `prop_assert!`) but replaces shrinking-based exploration with plain
//! deterministic sampling: each case draws from a SplitMix64 stream
//! seeded by the test name and case index, so failures are exactly
//! reproducible run to run.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Test-runner settings.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end() - self.start()) as u64 + 1;
                self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// `&str` patterns act as string strategies, as in upstream proptest.
/// This stub understands the `.{lo,hi}` form (random printable text of
/// bounded length, salted with SQL-ish punctuation so lexers see
/// interesting input); any other pattern samples as its literal self.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        const ALPHABET: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 \t'\"(),.<>=*/+-_;%";
        if let Some(body) = self.strip_prefix(".{").and_then(|s| s.strip_suffix('}')) {
            if let Some((lo, hi)) = body.split_once(',') {
                if let (Ok(lo), Ok(hi)) = (lo.parse::<usize>(), hi.parse::<usize>()) {
                    let n = lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize;
                    return (0..n)
                        .map(|_| ALPHABET[rng.below(ALPHABET.len())] as char)
                        .collect();
                }
            }
        }
        self.to_string()
    }
}

/// Object-safe strategy, for heterogeneous unions.
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A boxed strategy (building block of [`Union`]).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Box a strategy, erasing its concrete type.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Box::new(s))
}

/// Uniform choice among alternative strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Union over the given alternatives.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs an alternative");
        Union(choices)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len());
        self.0[i].sample(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for vectors of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($s)),+])
    };
}

/// Define property tests: each `fn` runs its body for `cases`
/// deterministically-sampled argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, u32)> {
        (0.0f64..1.0, 1u32..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0.5f64..2.5, n in 1usize..4) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0.0f64..1.0, 2..5),
            p in pair(),
            s in prop_oneof![Just("a"), Just("b")],
            mut k in 0u32..3,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(p.0 < 1.0);
            k += 1;
            prop_assert!(k >= 1);
            prop_assert!(s == "a" || s == "b");
        }
    }
}
