//! Offline stub of `rand` (0.9-era API surface).
//!
//! Backs `StdRng` with SplitMix64: statistically fine for workload
//! generation, fully deterministic per seed, and dependency-free. The
//! generator stream differs from upstream `rand`, which is acceptable
//! here because every consumer seeds explicitly and only requires
//! determinism, not a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random-number generator.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator (SplitMix64 in this stub).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A range values can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u32, u64, usize, i32, i64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(10..=20);
            assert!((10..=20).contains(&x));
            let f = r.random_range(0.1..0.9);
            assert!((0.1..0.9).contains(&f));
            let u = r.random_range(2..=10u32);
            assert!((2..=10).contains(&u));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }
}
