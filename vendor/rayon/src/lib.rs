//! Offline stub of `rayon`.
//!
//! Provides the two primitives the advisor's parallel enumeration
//! needs — `join` and an **order-preserving** `par_map` over slices —
//! implemented with `std::thread::scope`. Results come back in input
//! order regardless of scheduling, and worker panics propagate to the
//! caller exactly as rayon's would, so `catch_unwind`-based tests see
//! identical behaviour on the serial and parallel paths.

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::thread;

/// Number of worker threads `par_map` fans out to. Like upstream
/// rayon, the `RAYON_NUM_THREADS` environment variable overrides the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    })
}

/// Slice extension providing an ordered parallel map.
pub trait ParallelMapSlice<T> {
    /// Map `f` over the slice on up to [`current_num_threads`] scoped
    /// threads; the output vector is in input order.
    fn par_map<R, F>(&self, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync;
}

impl<T> ParallelMapSlice<T> for [T] {
    fn par_map<R, F>(&self, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.len() < 2 {
            return self.iter().map(f).collect();
        }
        let chunk = self.len().div_ceil(threads);
        let mut out: Vec<Option<R>> = Vec::new();
        out.resize_with(self.len(), || None);
        thread::scope(|s| {
            let handles: Vec<_> = self
                .chunks(chunk)
                .zip(out.chunks_mut(chunk))
                .map(|(items, slots)| {
                    let f = &f;
                    s.spawn(move || {
                        for (slot, item) in slots.iter_mut().zip(items) {
                            *slot = Some(f(item));
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });
        out.into_iter()
            .map(|o| o.expect("every slot written by its worker"))
            .collect()
    }
}

/// Prelude mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::ParallelMapSlice;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys = xs.par_map(|&x| x * 2);
        assert_eq!(ys, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_propagates_panics() {
        let xs = [1, 2, 3, 4];
        let r = std::panic::catch_unwind(|| xs.par_map(|&x| assert_ne!(x, 3)));
        assert!(r.is_err());
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "a"), (1, "a"));
    }
}
