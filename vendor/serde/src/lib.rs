//! Offline stub of `serde`.
//!
//! The repository derives `Serialize`/`Deserialize` on its data types
//! to declare that they are plain serializable data, but nothing in
//! the workspace performs actual serialization (reports are printed as
//! text and JSON artifacts are written by hand). The traits are
//! therefore markers and the derive emits empty impls; swapping the
//! real `serde` back in requires no source changes.

#![warn(missing_docs)]

/// Marker for types whose values can be serialized.
pub trait Serialize {}

/// Marker for types whose values can be deserialized.
pub trait Deserialize<'de>: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
