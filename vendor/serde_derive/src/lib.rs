//! Offline stub of `serde_derive`.
//!
//! Parses just enough of the item to find its name and emits empty
//! impls of the marker traits from the sibling `serde` stub. Generic
//! types are not supported (the workspace derives only on concrete
//! types); hitting one is a compile error pointing here.

use proc_macro::{TokenStream, TokenTree};

/// Name of the type a `struct`/`enum`/`union` item defines.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip attributes (`#[...]`, doc comments included).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let id = id.to_string();
                if id == "struct" || id == "enum" || id == "union" {
                    match tokens.next() {
                        Some(TokenTree::Ident(name)) => {
                            if let Some(TokenTree::Punct(p)) = tokens.peek() {
                                assert!(
                                    p.as_char() != '<',
                                    "serde stub derive does not support generic types"
                                );
                            }
                            return name.to_string();
                        }
                        other => panic!("expected type name, found {other:?}"),
                    }
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde stub derive: no struct/enum/union found in input");
}

/// Derive the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derive the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
